"""The ``pgfmu`` extension: every ``fmu_*`` function packaged for install.

The public API has three layers (see :mod:`repro.core.session`); this module
is the **extension layer** for the pgFMU core.  Each UDF is declared with
the :func:`~repro.sqldb.udf.scalar_udf` / :func:`~repro.sqldb.udf.table_udf`
decorators and bundled into an :class:`~repro.sqldb.udf.Extension` by
:func:`pgfmu_extension`, which sessions install via
``database.install_extension(...)`` - the same way PostgreSQL installs pgFMU
itself (and the way the MADlib-style pack in :mod:`repro.ml.udfs` installs).

Every function from Section 5-7 of the paper is exposed so the paper's SQL
queries run verbatim against the engine:

Scalar UDFs
    ``fmu_create``, ``fmu_copy``, ``fmu_delete_instance``, ``fmu_delete_model``,
    ``fmu_set_initial``, ``fmu_set_minimum``, ``fmu_set_maximum``, ``fmu_reset``,
    ``fmu_parest`` (returns the estimation errors as an array literal) and
    ``fmu_calibrate`` (a composition-friendly variant returning the instance
    id, used to express the paper's single-query workflow).

Set-returning UDFs
    ``fmu_variables``, ``fmu_get``, ``fmu_simulate``, ``fmu_models``,
    ``fmu_instances``, and ``fmu_extensions`` (installed extensions; an
    fmu-namespace alias of the engine's built-in ``installed_extensions()``).

``fmu_simulate`` additionally accepts an **array literal of instance ids**
(``SELECT * FROM fmu_simulate('{A, B, C}', ...)``): the batch overload runs
the measurement query through the executor once and reuses the bound input
series for every instance instead of re-running it N times.
"""

from __future__ import annotations

import warnings
from typing import Any, List, Optional

from repro.errors import PgFmuError, SqlTypeError
from repro.sqldb.arrays import format_array_literal, parse_array_literal
from repro.sqldb.types import SqlType, coerce
from repro.sqldb.udf import Extension, register_extension_factory, scalar_udf, table_udf
from repro.core.parest import DEFAULT_SIMILARITY_THRESHOLD

#: Version reported by ``fmu_extensions()`` for the pgFMU core pack.
PGFMU_EXTENSION_VERSION = "1.1"


def parse_boolean_argument(value: Any, name: str) -> Optional[bool]:
    """Coerce a SQL-surface boolean argument (or None) for a pgFMU UDF.

    Delegates to the engine's own boolean coercion so the accepted literal
    spellings cannot diverge from every other boolean in the SQL layer.
    """
    if value is None:
        return None
    try:
        return coerce(value, SqlType.BOOLEAN)
    except SqlTypeError:
        raise PgFmuError(f"invalid boolean {value!r} for {name}") from None


def parse_parest_arguments(instance_ids: Any, input_sqls: Any) -> tuple:
    """Parse and validate the array-literal arguments of ``fmu_parest``.

    One measurement query is broadcast over all instances; otherwise the two
    lists must be the same length.  Mismatches are rejected here, before any
    query executes, with a message that names both lengths *and* the
    broadcast form - the estimator's own length check fires later and cannot
    mention the array-literal syntax.
    """
    ids = parse_array_literal(instance_ids)
    queries = parse_array_literal(input_sqls)
    if len(queries) == 1 and len(ids) > 1:
        queries = queries * len(ids)
    elif len(queries) != len(ids):
        raise PgFmuError(
            f"fmu_parest received {len(ids)} instance id(s) but {len(queries)} "
            f"measurement quer(y/ies); pass one query per instance, or a "
            f"single query to share across all instances"
        )
    return ids, queries


def pgfmu_extension(session) -> Extension:
    """Build the ``pgfmu`` extension bound to a :class:`~repro.core.session.Session`.

    The UDFs close over the session's managers (catalogue, estimator,
    simulator), so installing the returned bundle on the session's database
    wires the paper's whole SQL surface.
    """

    # ------------------------------------------------------------------ #
    # Scalar UDFs
    # ------------------------------------------------------------------ #
    @scalar_udf(min_args=1, max_args=2,
                description="Load or compile an FMU/Modelica model and create an instance")
    def fmu_create(_db, model_ref: str, instance_id: Optional[str] = None) -> str:
        return str(session.create(model_ref, instance_id))

    @scalar_udf(min_args=1, max_args=2,
                description="Copy a model instance (values included)")
    def fmu_copy(_db, instance_id: str, new_instance_id: Optional[str] = None) -> str:
        return str(session.instances.copy(instance_id, new_instance_id))

    @scalar_udf(min_args=1, max_args=1, description="Delete one model instance")
    def fmu_delete_instance(_db, instance_id: str) -> str:
        return session.instances.delete_instance(instance_id)

    @scalar_udf(min_args=1, max_args=1,
                description="Delete a model and all of its instances")
    def fmu_delete_model(_db, model_id: str) -> str:
        return session.instances.delete_model(model_id)

    @scalar_udf(min_args=3, max_args=3,
                description="Set the per-instance initial value of a variable")
    def fmu_set_initial(_db, instance_id: str, var_name: str, value: Any) -> str:
        return session.instances.set_initial(instance_id, var_name, value)

    @scalar_udf(min_args=3, max_args=3,
                description="Set the minimum bound of a model variable")
    def fmu_set_minimum(_db, instance_id: str, var_name: str, value: Any) -> str:
        return session.instances.set_minimum(instance_id, var_name, value)

    @scalar_udf(min_args=3, max_args=3,
                description="Set the maximum bound of a model variable")
    def fmu_set_maximum(_db, instance_id: str, var_name: str, value: Any) -> str:
        return session.instances.set_maximum(instance_id, var_name, value)

    @scalar_udf(min_args=1, max_args=1,
                description="Reset a model instance to its initial values")
    def fmu_reset(_db, instance_id: str) -> str:
        return session.instances.reset(instance_id)

    @scalar_udf(min_args=2, max_args=5,
                description="Estimate model instance parameters from measurements (SI and MI)")
    def fmu_parest(
        _db,
        instance_ids: str,
        input_sqls: str,
        parameters: Optional[str] = None,
        threshold: Optional[float] = None,
        batch_enabled: Any = None,
    ) -> str:
        ids, queries = parse_parest_arguments(instance_ids, input_sqls)
        pars = parse_array_literal(parameters) or None
        outcomes = session.parest(
            ids,
            queries,
            parameters=pars,
            threshold=threshold if threshold is not None else DEFAULT_SIMILARITY_THRESHOLD,
            batch_enabled=parse_boolean_argument(batch_enabled, "fmu_parest batch_enabled"),
        )
        return format_array_literal([round(o.error, 6) for o in outcomes])

    @scalar_udf(min_args=2, max_args=4,
                description="Calibrate one instance and return its id (for nested queries)")
    def fmu_calibrate(
        _db,
        instance_id: str,
        input_sql: str,
        parameters: Optional[str] = None,
        threshold: Optional[float] = None,
    ) -> str:
        """Calibrate one instance and return its id (composition-friendly)."""
        pars = parse_array_literal(parameters) or None
        session.parest(
            [instance_id],
            [input_sql],
            parameters=pars,
            threshold=threshold if threshold is not None else DEFAULT_SIMILARITY_THRESHOLD,
        )
        return instance_id

    # ------------------------------------------------------------------ #
    # Set-returning UDFs
    # ------------------------------------------------------------------ #
    @table_udf(columns=["instanceid", "varname", "vartype", "initialvalue", "minvalue", "maxvalue"],
               min_args=1, max_args=1,
               description="Variables and parameters of a model instance")
    def fmu_variables(_db, instance_id: str) -> List[List[Any]]:
        return [
            [
                row["instanceid"],
                row["varname"],
                row["vartype"],
                row["initialvalue"],
                row["minvalue"],
                row["maxvalue"],
            ]
            for row in session.instances.variables(instance_id)
        ]

    @table_udf(columns=["initialvalue", "minvalue", "maxvalue"], min_args=2, max_args=2,
               description="Initial/min/max values of one variable")
    def fmu_get(_db, instance_id: str, var_name: str) -> List[List[Any]]:
        values = session.instances.get(instance_id, var_name)
        return [[values["initialvalue"], values["minvalue"], values["maxvalue"]]]

    @table_udf(columns=["simulationtime", "instanceid", "varname", "value"],
               min_args=1, max_args=4,
               description="Simulate one instance, or an array literal of instances in one shared pass")
    def fmu_simulate(
        _db,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> List[List[Any]]:
        text = str(instance_id)
        stripped = text.strip()
        # Braces mark the batch overload - unless an instance literally has
        # that id, in which case the single-instance path wins (ids are
        # unvalidated strings, so '{house}' is a legal instance name).
        if (
            stripped.startswith("{")
            and stripped.endswith("}")
            and not session.catalog.has_instance(text)
        ):
            ids = parse_array_literal(stripped)
            if not ids:
                raise PgFmuError("fmu_simulate received an empty instance array")
            return session.simulator.simulate_rows_many(ids, input_sql, time_from, time_to)
        return session.simulator.simulate_rows(text, input_sql, time_from, time_to)

    @table_udf(columns=["modelid", "modelname", "fmureference", "defaultstarttime", "defaultendtime"],
               min_args=0, max_args=0,
               description="All models registered in the catalogue")
    def fmu_models(_db) -> List[List[Any]]:
        rows = session.database.table("model").to_dicts()
        return [
            [r["modelid"], r["modelname"], r["fmureference"], r["defaultstarttime"], r["defaultendtime"]]
            for r in rows
        ]

    @table_udf(columns=["instanceid", "modelid"], min_args=0, max_args=0,
               description="All model instances registered in the catalogue")
    def fmu_instances(_db) -> List[List[Any]]:
        rows = session.database.table("modelinstance").to_dicts()
        return [[r["instanceid"], r["modelid"]] for r in rows]

    @table_udf(columns=["extname", "extversion", "n_udfs", "description"],
               min_args=0, max_args=0,
               description="All extensions installed on this database")
    def fmu_extensions(db) -> List[List[Any]]:
        # fmu_-namespace alias: delegate to the engine's builtin so the row
        # shape cannot diverge.
        return db.udfs.table("installed_extensions").func(db)

    return Extension.from_functions(
        "pgfmu",
        (
            fmu_create,
            fmu_copy,
            fmu_delete_instance,
            fmu_delete_model,
            fmu_set_initial,
            fmu_set_minimum,
            fmu_set_maximum,
            fmu_reset,
            fmu_parest,
            fmu_calibrate,
            fmu_variables,
            fmu_get,
            fmu_simulate,
            fmu_models,
            fmu_instances,
            fmu_extensions,
        ),
        version=PGFMU_EXTENSION_VERSION,
        description="In-DBMS storage, simulation and calibration of FMU models",
    )


def _pgfmu_factory(database, **options) -> Extension:
    """Factory behind ``database.install_extension("pgfmu")``.

    Installing pgFMU on a bare database boots a full session around it
    (catalogue tables, FMU storage, managers), whose constructor installs the
    bundle; the factory just hands that bundle back.
    """
    from repro.core.session import Session

    options.setdefault("register_ml", False)
    Session(database=database, **options)
    return database.extension("pgfmu")


register_extension_factory("pgfmu", _pgfmu_factory)


def register_pgfmu_udfs(session) -> None:
    """Deprecated: install the ``pgfmu`` extension instead.

    Kept as a thin shim so pre-extension callers keep working::

        session.database.install_extension(pgfmu_extension(session))
    """
    warnings.warn(
        "register_pgfmu_udfs() is deprecated; use "
        "database.install_extension(pgfmu_extension(session)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    session.database.install_extension(pgfmu_extension(session))
