"""The :class:`PgFmu` session facade.

A ``PgFmu`` object owns (or wraps) a :class:`~repro.sqldb.database.Database`,
creates the model catalogue, registers all ``fmu_*`` UDFs (and, optionally,
the MADlib-style ML UDFs), and exposes the same operations as plain Python
methods for callers that prefer an API over SQL.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.catalog import ModelCatalog
from repro.core.instances import InstanceManager
from repro.core.parest import DEFAULT_SIMILARITY_THRESHOLD, ParameterEstimator, ParestOutcome
from repro.core.simulate import Simulator
from repro.core.udfs import register_pgfmu_udfs
from repro.fmi.results import SimulationResult
from repro.ml.udfs import register_ml_udfs
from repro.sqldb.database import Database
from repro.sqldb.result import ResultSet


class PgFmu:
    """A pgFMU session: database + model catalogue + UDFs.

    Parameters
    ----------
    database:
        An existing database to extend; a fresh one is created when omitted.
    storage_dir:
        Directory for FMU storage (a temporary directory by default).
    ga_options / local_options:
        Default calibration budgets used by ``fmu_parest``; benchmarks shrink
        them to keep run times manageable.
    seed:
        Seed for the calibration global search.
    register_ml:
        Also register the MADlib-style ML UDFs (``arima_train`` etc.).
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        storage_dir: Optional[str] = None,
        ga_options: Optional[dict] = None,
        local_options: Optional[dict] = None,
        seed: int = 1,
        register_ml: bool = True,
    ):
        self.database = database if database is not None else Database()
        self.catalog = ModelCatalog(self.database, storage_dir=storage_dir)
        self.instances = InstanceManager(self.catalog)
        self.estimator = ParameterEstimator(
            catalog=self.catalog,
            instances=self.instances,
            ga_options=dict(ga_options or {}),
            local_options=dict(local_options or {}),
            seed=seed,
        )
        self.simulator = Simulator(catalog=self.catalog, instances=self.instances)
        register_pgfmu_udfs(self)
        if register_ml:
            register_ml_udfs(self.database)

    # ------------------------------------------------------------------ #
    # SQL passthrough
    # ------------------------------------------------------------------ #
    def sql(self, query: str, params: Optional[Sequence[Any]] = None) -> ResultSet:
        """Execute a SQL statement against the session's database."""
        return self.database.execute(query, params)

    # ------------------------------------------------------------------ #
    # Model / instance management
    # ------------------------------------------------------------------ #
    def create(self, model_ref: str, instance_id: Optional[str] = None) -> str:
        """``fmu_create``: load/compile a model and create an instance."""
        return self.instances.create(model_ref, instance_id)

    def copy(self, instance_id: str, new_instance_id: Optional[str] = None) -> str:
        """``fmu_copy``: duplicate an instance including its values."""
        return self.instances.copy(instance_id, new_instance_id)

    def delete_instance(self, instance_id: str) -> str:
        """``fmu_delete_instance``."""
        return self.instances.delete_instance(instance_id)

    def delete_model(self, model_id: str) -> str:
        """``fmu_delete_model`` (cascades to all instances)."""
        return self.instances.delete_model(model_id)

    def variables(self, instance_id: str) -> List[Dict[str, Any]]:
        """``fmu_variables`` as a list of dict rows."""
        return self.instances.variables(instance_id)

    def get(self, instance_id: str, var_name: str) -> Dict[str, Any]:
        """``fmu_get``: initial/min/max values of one variable."""
        return self.instances.get(instance_id, var_name)

    def set_initial(self, instance_id: str, var_name: str, value: Any) -> str:
        """``fmu_set_initial``."""
        return self.instances.set_initial(instance_id, var_name, value)

    def set_minimum(self, instance_id: str, var_name: str, value: Any) -> str:
        """``fmu_set_minimum``."""
        return self.instances.set_minimum(instance_id, var_name, value)

    def set_maximum(self, instance_id: str, var_name: str, value: Any) -> str:
        """``fmu_set_maximum``."""
        return self.instances.set_maximum(instance_id, var_name, value)

    def reset(self, instance_id: str) -> str:
        """``fmu_reset``: restore the model's initial values for an instance."""
        return self.instances.reset(instance_id)

    # ------------------------------------------------------------------ #
    # Calibration and simulation
    # ------------------------------------------------------------------ #
    def parest(
        self,
        instance_ids: Sequence[str],
        input_sqls: Sequence[str],
        parameters: Optional[Sequence[str]] = None,
        threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
        use_mi_optimization: bool = True,
    ) -> List[ParestOutcome]:
        """``fmu_parest``: calibrate one or more instances."""
        return self.estimator.estimate(
            instance_ids,
            input_sqls,
            parameters=parameters,
            threshold=threshold,
            use_mi_optimization=use_mi_optimization,
        )

    def simulate(
        self,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> SimulationResult:
        """``fmu_simulate`` returning the trajectory object (Python API)."""
        return self.simulator.simulate_result(instance_id, input_sql, time_from, time_to)

    def simulate_rows(
        self,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> List[List[Any]]:
        """``fmu_simulate`` returning long-format rows (the SQL UDF shape)."""
        return self.simulator.simulate_rows(instance_id, input_sql, time_from, time_to)

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def instance_parameters(self, instance_id: str) -> Dict[str, float]:
        """Current per-instance parameter values (from the catalogue)."""
        parameter_names = set(self.instances.parameter_names(instance_id))
        values = self.catalog.instance_values(instance_id)
        result: Dict[str, float] = {}
        for name in parameter_names:
            value = values.get(name)
            if value is not None:
                result[name] = float(value)
        return result

    def model_ids(self) -> List[str]:
        """All model UUIDs present in the catalogue."""
        return [row["modelid"] for row in self.database.table("model").to_dicts()]

    def instance_ids(self) -> List[str]:
        """All instance identifiers present in the catalogue."""
        return [row["instanceid"] for row in self.database.table("modelinstance").to_dicts()]
