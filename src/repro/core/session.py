"""The pgFMU session: owner of the database, catalogue, and API layers.

The public API is layered like a real database system (this is the seam the
scaling roadmap plugs into - async sessions, multi-backend, caching):

1. **Driver layer** - :func:`repro.connect` returns a PEP-249-style
   :class:`~repro.sqldb.connection.Connection` with cursors, parameter
   binding, ``executemany``, and transactions, all delegated to the SQL
   engine.  :meth:`PgFmu.sql` is a deprecated shim over this layer.
2. **Object layer** - :meth:`Session.create` returns a fluent
   :class:`~repro.core.handles.InstanceHandle`
   (``inst.set_initial(...).set_bounds(...).simulate(...)``), and
   :meth:`Session.simulate_many` batches a fleet through one shared input
   pass.  Handles subclass :class:`str`, so they remain valid wherever a raw
   instance id was accepted before.
3. **Extension layer** - the ``fmu_*`` UDFs are packaged as the ``pgfmu``
   :class:`~repro.sqldb.udf.Extension` and the MADlib-style ML UDFs as
   ``"madlib"``; both are installed with
   :meth:`~repro.sqldb.database.Database.install_extension` and listed by
   the ``fmu_extensions()`` set-returning function.

:class:`Session` is the modern surface.  :class:`PgFmu` extends it with the
original stringly-typed methods, kept as thin deprecated shims (each warns
once per session) so the paper's scripts and the seed tests run unchanged.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.catalog import ModelCatalog
from repro.core.handles import InstanceHandle, ModelHandle
from repro.core.instances import InstanceManager
from repro.core.parest import DEFAULT_SIMILARITY_THRESHOLD, ParameterEstimator, ParestOutcome
from repro.core.simulate import Simulator
from repro.core.udfs import pgfmu_extension
from repro.fmi.results import SimulationResult
from repro.sqldb.connection import Connection
from repro.sqldb.database import Database
from repro.sqldb.result import ResultSet


class Session:
    """A pgFMU session: database + model catalogue + installed extensions.

    The session is the object-layer entry point.  It owns the SQL database,
    creates the four catalogue tables and FMU storage, installs the
    ``pgfmu`` extension (and optionally ``madlib``), and hands out fluent
    handles::

        session = Session()                      # or repro.connect().session
        inst = session.create(model_source, "HP1Instance1")
        inst.set_initial("Cp", 2.0).calibrate("SELECT * FROM measurements")
        result = inst.simulate("SELECT * FROM measurements")
        fleet = session.simulate_many([inst, inst.copy()], "SELECT * FROM measurements")

    SQL is always available through :meth:`execute` / :meth:`cursor`, and
    every ``fmu_*`` UDF routes back into this object's managers - the SQL
    and Python surfaces cannot diverge.

    Parameters
    ----------
    database:
        An existing database to extend; a fresh one is created when omitted.
    storage_dir:
        Directory for FMU storage (a temporary directory by default).
    ga_options / local_options:
        Default calibration budgets used by ``fmu_parest``; benchmarks shrink
        them to keep run times manageable.
    seed:
        Seed for the calibration global search.
    register_ml:
        Also install the ``"madlib"`` extension (``arima_train`` etc.).

    Attributes
    ----------
    database:
        The underlying :class:`~repro.sqldb.database.Database`.
    catalog:
        The :class:`~repro.core.catalog.ModelCatalog` (catalogue tables +
        FMU storage + runtime-model caches).
    instances / simulator / estimator:
        The managers behind the ``fmu_*`` UDFs.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        storage_dir: Optional[str] = None,
        ga_options: Optional[dict] = None,
        local_options: Optional[dict] = None,
        seed: int = 1,
        register_ml: bool = True,
    ):
        self._warned_shims: set = set()
        self.database = database if database is not None else Database()
        self.catalog = ModelCatalog(self.database, storage_dir=storage_dir)
        self.instances = InstanceManager(self.catalog)
        self.estimator = ParameterEstimator(
            catalog=self.catalog,
            instances=self.instances,
            ga_options=dict(ga_options or {}),
            local_options=dict(local_options or {}),
            seed=seed,
        )
        self.simulator = Simulator(catalog=self.catalog, instances=self.instances)
        self._connection = Connection(self.database, session=self)
        self.database.install_extension(pgfmu_extension(self))
        if register_ml:
            self.database.install_extension("madlib")

    # ------------------------------------------------------------------ #
    # Driver layer
    # ------------------------------------------------------------------ #
    def connection(self) -> Connection:
        """The session's driver-layer connection.

        Long-lived, but not load-bearing: closing it (e.g. leaving a
        ``with repro.connect() as conn:`` block) only invalidates that
        handle - the next call here mints a fresh connection over the same
        database, so the session itself stays usable.
        """
        if self._connection.closed:
            self._connection = Connection(self.database, session=self)
        return self._connection

    def cursor(self):
        """A fresh cursor on the session's connection."""
        return self.connection().cursor()

    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> ResultSet:
        """Execute a SQL statement and return its result set."""
        return self.connection().execute(sql, params).result

    # ------------------------------------------------------------------ #
    # Object layer: models and instances
    # ------------------------------------------------------------------ #
    def create(self, model_ref: str, instance_id: Optional[str] = None) -> InstanceHandle:
        """``fmu_create``: load/compile a model and return an instance handle."""
        created = self.instances.create(model_ref, instance_id)
        return InstanceHandle(created, self)

    def instance(self, instance_id: str) -> InstanceHandle:
        """Handle for an existing instance (raises if unknown)."""
        self.catalog.instance_row(str(instance_id))
        return InstanceHandle(str(instance_id), self)

    def model(self, model_id: str) -> ModelHandle:
        """Handle for an existing model (raises if unknown)."""
        self.catalog.model_row(str(model_id))
        return ModelHandle(str(model_id), self)

    def models(self) -> List[ModelHandle]:
        """Handles for every model in the catalogue."""
        return [ModelHandle(model_id, self) for model_id in self.model_ids()]

    # ------------------------------------------------------------------ #
    # Calibration and simulation
    # ------------------------------------------------------------------ #
    def parest(
        self,
        instance_ids: Sequence[str],
        input_sqls: Sequence[str],
        parameters: Optional[Sequence[str]] = None,
        threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
        use_mi_optimization: bool = True,
        batch_enabled: Optional[bool] = None,
    ) -> List[ParestOutcome]:
        """``fmu_parest``: calibrate one or more instances.

        ``batch_enabled`` overrides the estimator's population-batched
        evaluation for this call (``None`` keeps the default, which scores
        each GA generation as one batched fleet solve).
        """
        return self.estimator.estimate(
            instance_ids,
            input_sqls,
            parameters=parameters,
            threshold=threshold,
            use_mi_optimization=use_mi_optimization,
            batch_enabled=batch_enabled,
        )

    def simulate(
        self,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> SimulationResult:
        """``fmu_simulate`` returning the trajectory object (Python API)."""
        return self.simulator.simulate_result(instance_id, input_sql, time_from, time_to)

    def simulate_many(
        self,
        instance_ids: Sequence[str],
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> Dict[str, SimulationResult]:
        """Batch ``fmu_simulate``: simulate a whole fleet in one pass.

        The measurement query executes once (instead of once per instance),
        and instances of the same model integrate as a single batched
        ``(N, d)`` solve through one vectorized right-hand side
        (:meth:`~repro.fmi.model.FmuModel.simulate_batch`), which scales
        sub-linearly in fleet size.  Batched trajectories match the
        sequential per-instance path within 1e-9; systems that cannot batch
        fall back to it automatically.  Results are keyed by instance id in
        input order.

        Parameters
        ----------
        instance_ids:
            Instance ids (or handles) to simulate; duplicates are simulated
            once.  The instances may belong to different models - each
            same-model group batches separately.
        input_sql:
            Optional measurement query; its time column defines the output
            grid and its remaining columns bind to model inputs by name.
        time_from / time_to:
            Optional simulation window overrides.
        """
        return self.simulator.simulate_many(instance_ids, input_sql, time_from, time_to)

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def instance_parameters(self, instance_id: str) -> Dict[str, float]:
        """Current per-instance parameter values (from the catalogue)."""
        parameter_names = set(self.instances.parameter_names(instance_id))
        values = self.catalog.instance_values(instance_id)
        result: Dict[str, float] = {}
        for name in parameter_names:
            value = values.get(name)
            if value is not None:
                result[name] = float(value)
        return result

    def model_ids(self) -> List[str]:
        """All model UUIDs present in the catalogue."""
        return [row["modelid"] for row in self.database.table("model").to_dicts()]

    def instance_ids(self) -> List[str]:
        """All instance identifiers present in the catalogue."""
        return [row["instanceid"] for row in self.database.table("modelinstance").to_dicts()]

    def extensions(self) -> List[str]:
        """Names of the extensions installed on the session's database."""
        return [ext.name for ext in self.database.extensions()]


def _deprecated_shim(replacement: str) -> Callable:
    """Mark a :class:`PgFmu` method as a shim over the layered API.

    The first call per session emits a :class:`DeprecationWarning` naming the
    replacement; the shim then delegates, so results stay identical to the
    new API.
    """

    def decorator(method: Callable) -> Callable:
        name = method.__name__

        @functools.wraps(method)
        def wrapper(self, *args, **kwargs):
            if name not in self._warned_shims:
                self._warned_shims.add(name)
                warnings.warn(
                    f"PgFmu.{name}() is deprecated; use {replacement} instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return method(self, *args, **kwargs)

        wrapper.__deprecated_replacement__ = replacement
        return wrapper

    return decorator


class PgFmu(Session):
    """The original monolithic facade, kept as deprecated shims.

    Every method below delegates to the layered API (driver connection or
    instance/model handles) and emits a :class:`DeprecationWarning` once per
    session.  Because handles subclass :class:`str`, each shim returns a
    value equal to what the pre-redesign facade returned.
    """

    # ------------------------------------------------------------------ #
    # SQL passthrough (driver layer shim)
    # ------------------------------------------------------------------ #
    @_deprecated_shim("Session.execute() or repro.connect()/Cursor")
    def sql(self, query: str, params: Optional[Sequence[Any]] = None) -> ResultSet:
        """Execute a SQL statement against the session's database."""
        return self.execute(query, params)

    # ------------------------------------------------------------------ #
    # Model / instance management (object layer shims)
    # ------------------------------------------------------------------ #
    @_deprecated_shim("InstanceHandle.copy()")
    def copy(self, instance_id: str, new_instance_id: Optional[str] = None) -> str:
        """``fmu_copy``: duplicate an instance including its values."""
        return self.instance(instance_id).copy(new_instance_id)

    @_deprecated_shim("InstanceHandle.delete()")
    def delete_instance(self, instance_id: str) -> str:
        """``fmu_delete_instance``."""
        return self.instance(instance_id).delete()

    @_deprecated_shim("ModelHandle.delete()")
    def delete_model(self, model_id: str) -> str:
        """``fmu_delete_model`` (cascades to all instances)."""
        return self.model(model_id).delete()

    @_deprecated_shim("InstanceHandle.variables()")
    def variables(self, instance_id: str) -> List[Dict[str, Any]]:
        """``fmu_variables`` as a list of dict rows."""
        return self.instance(instance_id).variables()

    @_deprecated_shim("InstanceHandle.get()")
    def get(self, instance_id: str, var_name: str) -> Dict[str, Any]:
        """``fmu_get``: initial/min/max values of one variable."""
        return self.instance(instance_id).get(var_name)

    @_deprecated_shim("InstanceHandle.set_initial()")
    def set_initial(self, instance_id: str, var_name: str, value: Any) -> str:
        """``fmu_set_initial``."""
        return self.instance(instance_id).set_initial(var_name, value)

    @_deprecated_shim("InstanceHandle.set_minimum()")
    def set_minimum(self, instance_id: str, var_name: str, value: Any) -> str:
        """``fmu_set_minimum``."""
        return self.instance(instance_id).set_minimum(var_name, value)

    @_deprecated_shim("InstanceHandle.set_maximum()")
    def set_maximum(self, instance_id: str, var_name: str, value: Any) -> str:
        """``fmu_set_maximum``."""
        return self.instance(instance_id).set_maximum(var_name, value)

    @_deprecated_shim("InstanceHandle.reset()")
    def reset(self, instance_id: str) -> str:
        """``fmu_reset``: restore the model's initial values for an instance."""
        return self.instance(instance_id).reset()

    @_deprecated_shim("InstanceHandle.simulate_rows() or Session.simulate_many()")
    def simulate_rows(
        self,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> List[List[Any]]:
        """``fmu_simulate`` returning long-format rows (the SQL UDF shape)."""
        return self.instance(instance_id).simulate_rows(input_sql, time_from, time_to)
