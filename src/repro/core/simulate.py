"""Model simulation UDF (Algorithm 4 of the paper).

``fmu_simulate`` loads the instance's runtime FMU from storage, binds the
measured input series produced by the optional ``input_sql`` query to the
model's input variables using the catalogue metadata (Challenge 2), resolves
the simulation window, integrates the model, and emits the results as a long
table ``(simulationTime, instanceId, varName, value)`` - one row per time
step and variable, the shape the paper's Table 4 shows.

For fleets, :meth:`Simulator.simulate_many` amortizes the per-call overhead
twice over: the ``input_sql`` query is executed and its series bound
**once**, and instances of the same model are *batched* - their states are
stacked into an ``(N, d)`` matrix and integrated together through one
numpy-vectorized right-hand side
(:meth:`repro.fmi.model.FmuModel.simulate_batch`), so the fleet costs one
solver loop instead of N.  This backs both ``Session.simulate_many`` and
the array-literal overload of the ``fmu_simulate`` UDF.  Setting
:attr:`Simulator.batch_enabled` to False restores the sequential
per-instance path (the escape hatch equivalence tests and benchmarks use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.catalog import ModelCatalog
from repro.core.instances import InstanceManager
from repro.errors import SimulationInputError
from repro.fmi.model import FmuModel
from repro.fmi.results import SimulationResult
from repro.solvers.retry import RetryPolicy


class _PreparedInputs:
    """The result of executing an ``input_sql`` query, shareable across
    instances: raw rows plus a cache of per-input-set bindings."""

    __slots__ = ("rows", "_bindings")

    def __init__(self, rows: Optional[List[Dict[str, Any]]]):
        self.rows = rows
        self._bindings: Dict[frozenset, tuple] = {}

    def bind(self, input_names: set) -> tuple:
        """Bound ``(inputs, measured_time)`` for a model's input-name set.

        Keyed by the exact names: the bound dict is looked up by the model's
        own spelling, so two models whose input names differ only in case
        must not share a binding.
        """
        if self.rows is None:
            return {}, None
        key = frozenset(input_names)
        bound = self._bindings.get(key)
        if bound is None:
            bound = Simulator._bind_inputs(self.rows, input_names)
            self._bindings[key] = bound
        return bound


@dataclass
class Simulator:
    """Implements ``fmu_simulate`` on top of the catalogue and FMI runtime."""

    catalog: ModelCatalog
    instances: InstanceManager
    #: Solver used for simulation; the adaptive solver is the default because
    #: simulation (unlike calibration) runs once and accuracy matters most.
    solver: str = "rk45"
    #: Batch same-model fleets through one vectorized integration pass
    #: (:meth:`FmuModel.simulate_batch`).  False forces the sequential
    #: per-instance path - the escape hatch equivalence tests and the fleet
    #: benchmark use to compare the two.
    batch_enabled: bool = True
    #: Degradation ladder applied when an integration raises
    #: :class:`~repro.errors.SolverError`: retry with tightened numerics,
    #: then fall back to a fixed-step solver (see
    #: :class:`~repro.solvers.retry.RetryPolicy`).  ``None`` disables
    #: retries (a divergence propagates on the first attempt).
    retry_policy: Optional[RetryPolicy] = field(default_factory=RetryPolicy)

    # ------------------------------------------------------------------ #
    # Core simulation
    # ------------------------------------------------------------------ #
    def prepare_inputs(self, input_sql: Optional[str]) -> _PreparedInputs:
        """Execute an input query once for reuse across many simulations."""
        if input_sql is None or not str(input_sql).strip():
            return _PreparedInputs(None)
        rows = self.catalog.database.query_dicts(str(input_sql))
        if not rows:
            raise SimulationInputError(f"input query returned no rows: {input_sql!r}")
        return _PreparedInputs(rows)

    def simulate_result(
        self,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
        output_step: Optional[float] = None,
    ) -> SimulationResult:
        """Simulate an instance and return the full trajectory object."""
        return self._simulate_prepared(
            instance_id, self.prepare_inputs(input_sql), time_from, time_to, output_step
        )

    def _bind_call(
        self,
        instance_id: str,
        model,
        prepared: _PreparedInputs,
        time_from: Optional[float],
        time_to: Optional[float],
    ) -> tuple:
        """Resolve the ``(inputs, start, stop, output_times)`` of one call."""
        input_names = set(model.input_names())
        inputs, measured_time = prepared.bind(input_names)
        if prepared.rows is None and input_names:
            raise SimulationInputError(
                f"model instance {instance_id!r} declares input variables "
                f"({', '.join(sorted(input_names))}) but no input query was supplied"
            )
        start, stop = self._resolve_window(
            instance_id, measured_time, time_from, time_to
        )
        output_times = None
        if measured_time is not None:
            mask = (measured_time >= start) & (measured_time <= stop)
            if mask.sum() >= 2:
                output_times = measured_time[mask]
        return inputs, start, stop, output_times

    def _simulate_prepared(
        self,
        instance_id: str,
        prepared: _PreparedInputs,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
        output_step: Optional[float] = None,
    ) -> SimulationResult:
        model = self.catalog.runtime_model(instance_id)
        inputs, start, stop, output_times = self._bind_call(
            instance_id, model, prepared, time_from, time_to
        )

        def run(solver_name: str, solver_options: Dict[str, Any]) -> SimulationResult:
            return model.simulate(
                inputs=inputs,
                start_time=start,
                stop_time=stop,
                output_step=output_step,
                output_times=output_times,
                solver=solver_name,
                solver_options=solver_options or None,
            )

        if self.retry_policy is None:
            return run(self.solver, {})
        return self.retry_policy.run(run, self.solver)

    def simulate_many(
        self,
        instance_ids: Sequence[str],
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> Dict[str, SimulationResult]:
        """Simulate many instances against one shared input pass, batching
        same-model fleets through one vectorized integration.

        The measurement query runs once and each distinct input-variable set
        is bound once, instead of once per instance as N sequential
        ``simulate`` calls would.  Instances are then grouped by model: each
        group of two or more integrates as one ``(N, d)`` batched solve
        (:meth:`FmuModel.simulate_batch`; trajectories match the sequential
        path to floating-point rounding, and non-batchable systems fall back
        to it automatically).  Results are keyed by instance id in input
        order.  Duplicate ids are simulated (and returned) once.
        """
        prepared = self.prepare_inputs(input_sql)
        unique_ids = list(dict.fromkeys(str(i) for i in instance_ids))
        if not self.batch_enabled:
            return {
                instance_id: self._simulate_prepared(
                    instance_id, prepared, time_from, time_to
                )
                for instance_id in unique_ids
            }
        groups: Dict[str, List[str]] = {}
        for instance_id in unique_ids:
            model_id = self.catalog.instance_row(instance_id)["modelid"]
            groups.setdefault(model_id, []).append(instance_id)
        results: Dict[str, SimulationResult] = {}
        for group_ids in groups.values():
            if len(group_ids) == 1:
                results[group_ids[0]] = self._simulate_prepared(
                    group_ids[0], prepared, time_from, time_to
                )
                continue
            models = [self.catalog.runtime_model(i) for i in group_ids]
            # Same model => same catalogue defaults and same shared series,
            # so the window and grid resolved for the first instance hold
            # for the whole group.
            inputs, start, stop, output_times = self._bind_call(
                group_ids[0], models[0], prepared, time_from, time_to
            )
            def run_batch(
                solver_name: str, solver_options: Dict[str, Any]
            ) -> List[SimulationResult]:
                return FmuModel.simulate_batch(
                    models,
                    inputs=inputs,
                    start_time=start,
                    stop_time=stop,
                    output_times=output_times,
                    solver=solver_name,
                    solver_options=solver_options or None,
                )

            if self.retry_policy is None:
                fleet = run_batch(self.solver, {})
            else:
                fleet = self.retry_policy.run(run_batch, self.solver)
            results.update(zip(group_ids, fleet))
        return {instance_id: results[instance_id] for instance_id in unique_ids}

    def simulate_rows(
        self,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> List[List[Any]]:
        """Simulate and emit long-format rows for the ``fmu_simulate`` UDF."""
        return self.simulate_rows_many([instance_id], input_sql, time_from, time_to)

    def simulate_rows_many(
        self,
        instance_ids: Sequence[str],
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> List[List[Any]]:
        """Long-format rows for one or more instances (one shared input pass,
        same-model fleets batched - see :meth:`simulate_many`).

        Duplicate ids contribute rows once, matching :meth:`simulate_many`.
        """
        results = self.simulate_many(instance_ids, input_sql, time_from, time_to)
        rows: List[List[Any]] = []
        for instance_id, result in results.items():
            model = self.catalog.runtime_model(instance_id)
            state_names = list(model.state_names())
            reported = state_names + [
                name for name in model.output_names() if name not in state_names
            ]
            for i, t in enumerate(result.time):
                for name in reported:
                    rows.append([float(t), instance_id, name, float(result[name][i])])
        return rows

    # ------------------------------------------------------------------ #
    # Input binding and window resolution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _bind_inputs(rows: List[Dict[str, Any]], input_names: set) -> tuple:
        """Map query columns onto model inputs by name (case-insensitive)."""
        first = rows[0]
        column_map = {column.lower(): column for column in first}
        time_column = None
        for candidate in ("time", "simulationtime", "timestamp"):
            if candidate in column_map:
                time_column = column_map[candidate]
                break
        if time_column is None:
            raise SimulationInputError(
                "the input query must expose a time column "
                "(one of: time, simulationTime, timestamp)"
            )
        time = np.array([float(row[time_column]) for row in rows], dtype=float)
        order = np.argsort(time, kind="stable")
        time = time[order]

        inputs: Dict[str, tuple] = {}
        for name in input_names:
            column = column_map.get(name.lower())
            if column is None:
                continue
            values = np.array(
                [0.0 if row[column] is None else float(row[column]) for row in rows],
                dtype=float,
            )[order]
            inputs[name] = (time, values)
        return inputs, time

    def _resolve_window(
        self,
        instance_id: str,
        measured_time: Optional[np.ndarray],
        time_from: Optional[float],
        time_to: Optional[float],
    ) -> tuple:
        model_row = self.catalog.model_row(self.instances.model_id_of(instance_id))
        start = time_from
        stop = time_to
        if start is None:
            if measured_time is not None:
                start = float(measured_time[0])
            else:
                start = model_row.get("defaultstarttime")
        if stop is None:
            if measured_time is not None:
                stop = float(measured_time[-1])
            else:
                stop = model_row.get("defaultendtime")
        if start is None or stop is None:
            raise SimulationInputError(
                "the simulation time window could not be determined; supply "
                "time_from/time_to or an input query with a time column"
            )
        start, stop = float(start), float(stop)
        if stop <= start:
            raise SimulationInputError(
                f"invalid simulation window: [{start}, {stop}]"
            )
        return start, stop
