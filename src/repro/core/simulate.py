"""Model simulation UDF (Algorithm 4 of the paper).

``fmu_simulate`` loads the instance's runtime FMU from storage, binds the
measured input series produced by the optional ``input_sql`` query to the
model's input variables using the catalogue metadata (Challenge 2), resolves
the simulation window, integrates the model, and emits the results as a long
table ``(simulationTime, instanceId, varName, value)`` - one row per time
step and variable, the shape the paper's Table 4 shows.

For fleets, :meth:`Simulator.simulate_many` amortizes the per-call overhead:
the ``input_sql`` query is executed and its series bound **once**, then every
instance is integrated against the shared prepared inputs - this backs both
``Session.simulate_many`` and the array-literal overload of the
``fmu_simulate`` UDF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.catalog import ModelCatalog
from repro.core.instances import InstanceManager
from repro.errors import SimulationInputError
from repro.fmi.results import SimulationResult


class _PreparedInputs:
    """The result of executing an ``input_sql`` query, shareable across
    instances: raw rows plus a cache of per-input-set bindings."""

    __slots__ = ("rows", "_bindings")

    def __init__(self, rows: Optional[List[Dict[str, Any]]]):
        self.rows = rows
        self._bindings: Dict[frozenset, tuple] = {}

    def bind(self, input_names: set) -> tuple:
        """Bound ``(inputs, measured_time)`` for a model's input-name set.

        Keyed by the exact names: the bound dict is looked up by the model's
        own spelling, so two models whose input names differ only in case
        must not share a binding.
        """
        if self.rows is None:
            return {}, None
        key = frozenset(input_names)
        bound = self._bindings.get(key)
        if bound is None:
            bound = Simulator._bind_inputs(self.rows, input_names)
            self._bindings[key] = bound
        return bound


@dataclass
class Simulator:
    """Implements ``fmu_simulate`` on top of the catalogue and FMI runtime."""

    catalog: ModelCatalog
    instances: InstanceManager
    #: Solver used for simulation; the adaptive solver is the default because
    #: simulation (unlike calibration) runs once and accuracy matters most.
    solver: str = "rk45"

    # ------------------------------------------------------------------ #
    # Core simulation
    # ------------------------------------------------------------------ #
    def prepare_inputs(self, input_sql: Optional[str]) -> _PreparedInputs:
        """Execute an input query once for reuse across many simulations."""
        if input_sql is None or not str(input_sql).strip():
            return _PreparedInputs(None)
        rows = self.catalog.database.query_dicts(str(input_sql))
        if not rows:
            raise SimulationInputError(f"input query returned no rows: {input_sql!r}")
        return _PreparedInputs(rows)

    def simulate_result(
        self,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
        output_step: Optional[float] = None,
    ) -> SimulationResult:
        """Simulate an instance and return the full trajectory object."""
        return self._simulate_prepared(
            instance_id, self.prepare_inputs(input_sql), time_from, time_to, output_step
        )

    def _simulate_prepared(
        self,
        instance_id: str,
        prepared: _PreparedInputs,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
        output_step: Optional[float] = None,
    ) -> SimulationResult:
        model = self.catalog.runtime_model(instance_id)
        input_names = set(model.input_names())

        inputs, measured_time = prepared.bind(input_names)
        if prepared.rows is None and input_names:
            raise SimulationInputError(
                f"model instance {instance_id!r} declares input variables "
                f"({', '.join(sorted(input_names))}) but no input query was supplied"
            )

        start, stop = self._resolve_window(
            instance_id, measured_time, time_from, time_to
        )
        output_times = None
        if measured_time is not None:
            mask = (measured_time >= start) & (measured_time <= stop)
            if mask.sum() >= 2:
                output_times = measured_time[mask]

        return model.simulate(
            inputs=inputs,
            start_time=start,
            stop_time=stop,
            output_step=output_step,
            output_times=output_times,
            solver=self.solver,
        )

    def simulate_many(
        self,
        instance_ids: Sequence[str],
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> Dict[str, SimulationResult]:
        """Simulate many instances against one shared input pass.

        The measurement query runs once and each distinct input-variable set
        is bound once, instead of once per instance as N sequential
        ``simulate`` calls would; results are keyed by instance id in input
        order.  Duplicate ids are simulated (and returned) once.
        """
        prepared = self.prepare_inputs(input_sql)
        return {
            instance_id: self._simulate_prepared(
                instance_id, prepared, time_from, time_to
            )
            for instance_id in dict.fromkeys(str(i) for i in instance_ids)
        }

    def simulate_rows(
        self,
        instance_id: str,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> List[List[Any]]:
        """Simulate and emit long-format rows for the ``fmu_simulate`` UDF."""
        return self.simulate_rows_many([instance_id], input_sql, time_from, time_to)

    def simulate_rows_many(
        self,
        instance_ids: Sequence[str],
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> List[List[Any]]:
        """Long-format rows for one or more instances (one shared input pass).

        Duplicate ids contribute rows once, matching :meth:`simulate_many`.
        """
        prepared = self.prepare_inputs(input_sql)
        rows: List[List[Any]] = []
        for instance_id in dict.fromkeys(str(i) for i in instance_ids):
            model = self.catalog.runtime_model(instance_id)
            result = self._simulate_prepared(instance_id, prepared, time_from, time_to)
            reported = list(model.state_names()) + [
                name for name in model.output_names() if name not in model.state_names()
            ]
            for i, t in enumerate(result.time):
                for name in reported:
                    rows.append([float(t), instance_id, name, float(result[name][i])])
        return rows

    # ------------------------------------------------------------------ #
    # Input binding and window resolution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _bind_inputs(rows: List[Dict[str, Any]], input_names: set) -> tuple:
        """Map query columns onto model inputs by name (case-insensitive)."""
        first = rows[0]
        column_map = {column.lower(): column for column in first}
        time_column = None
        for candidate in ("time", "simulationtime", "timestamp"):
            if candidate in column_map:
                time_column = column_map[candidate]
                break
        if time_column is None:
            raise SimulationInputError(
                "the input query must expose a time column "
                "(one of: time, simulationTime, timestamp)"
            )
        time = np.array([float(row[time_column]) for row in rows], dtype=float)
        order = np.argsort(time, kind="stable")
        time = time[order]

        inputs: Dict[str, tuple] = {}
        for name in input_names:
            column = column_map.get(name.lower())
            if column is None:
                continue
            values = np.array(
                [0.0 if row[column] is None else float(row[column]) for row in rows],
                dtype=float,
            )[order]
            inputs[name] = (time, values)
        return inputs, time

    def _resolve_window(
        self,
        instance_id: str,
        measured_time: Optional[np.ndarray],
        time_from: Optional[float],
        time_to: Optional[float],
    ) -> tuple:
        model_row = self.catalog.model_row(self.instances.model_id_of(instance_id))
        start = time_from
        stop = time_to
        if start is None:
            if measured_time is not None:
                start = float(measured_time[0])
            else:
                start = model_row.get("defaultstarttime")
        if stop is None:
            if measured_time is not None:
                stop = float(measured_time[-1])
            else:
                stop = model_row.get("defaultendtime")
        if start is None or stop is None:
            raise SimulationInputError(
                "the simulation time window could not be determined; supply "
                "time_from/time_to or an input query with a time column"
            )
        start, stop = float(start), float(stop)
        if stop <= start:
            raise SimulationInputError(
                f"invalid simulation window: [{start}, {stop}]"
            )
        return start, stop
