"""The pgFMU model catalogue (Figure 4 of the paper) and FMU storage.

The catalogue consists of four SQL tables living inside the database, so they
stay queryable with plain SQL:

* ``model`` - one row per loaded FMU model: UUID, name, reference, default
  experiment settings.
* ``modelvariable`` - one row per model variable: name, type (causality
  class), initial/min/max values stored as ``variant``.
* ``modelinstance`` - one row per model instance, referencing its parent
  model.
* ``modelinstancevalues`` - the per-instance variable values (``variant``),
  updated by ``fmu_set_initial`` and by parameter estimation.

FMU archives themselves are kept in *FMU storage*: a directory holding one
``<uuid>.fmu`` file per model, mirroring the paper's non-volatile FMU store.
A single stored archive is shared by all instances of the same model
(Challenge 3: never load or copy the FMU file more than once).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import UnknownInstanceError, UnknownModelError
from repro.fmi.archive import FmuArchive
from repro.fmi.model import FmuModel
from repro.sqldb.database import Database
from repro.sqldb.schema import ColumnDefinition, TableSchema
from repro.sqldb.types import SqlType, Variant

MODEL_TABLE = "model"
VARIABLE_TABLE = "modelvariable"
INSTANCE_TABLE = "modelinstance"
VALUES_TABLE = "modelinstancevalues"
#: Blob store for FMU archives, created only on databases with durable
#: storage attached - the zip bytes then live in the WAL/page store and
#: survive restarts, making the file store a rebuildable cache.
ARCHIVE_TABLE = "fmuarchive"

#: Causality classes stored in ``modelvariable.vartype``.
VARTYPE_PARAMETER = "parameter"
VARTYPE_INPUT = "input"
VARTYPE_OUTPUT = "output"
VARTYPE_STATE = "state"
VARTYPE_CONSTANT = "constant"
VARTYPE_LOCAL = "local"


class ModelCatalog:
    """Creates and manages the four catalogue tables plus FMU storage."""

    def __init__(self, database: Database, storage_dir: Optional[str] = None):
        self.database = database
        self._storage_dir = Path(storage_dir) if storage_dir else Path(tempfile.mkdtemp(prefix="pgfmu_storage_"))
        self._storage_dir.mkdir(parents=True, exist_ok=True)
        self._archive_cache: Dict[str, FmuArchive] = {}
        self._runtime_cache: Dict[str, FmuModel] = {}
        self._create_tables()

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #
    def _create_tables(self) -> None:
        if not self.database.has_table(MODEL_TABLE):
            self.database.create_table(
                TableSchema(
                    name=MODEL_TABLE,
                    columns=[
                        ColumnDefinition("modelid", SqlType.TEXT, not_null=True),
                        ColumnDefinition("modelname", SqlType.TEXT, not_null=True),
                        ColumnDefinition("description", SqlType.TEXT),
                        ColumnDefinition("fmureference", SqlType.TEXT),
                        ColumnDefinition("defaultstarttime", SqlType.DOUBLE),
                        ColumnDefinition("defaultendtime", SqlType.DOUBLE),
                        ColumnDefinition("defaultstepsize", SqlType.DOUBLE),
                        ColumnDefinition("tolerance", SqlType.DOUBLE),
                    ],
                    primary_key=["modelid"],
                )
            )
        if not self.database.has_table(VARIABLE_TABLE):
            self.database.create_table(
                TableSchema(
                    name=VARIABLE_TABLE,
                    columns=[
                        ColumnDefinition("modelid", SqlType.TEXT, not_null=True),
                        ColumnDefinition("varname", SqlType.TEXT, not_null=True),
                        ColumnDefinition("vartype", SqlType.TEXT, not_null=True),
                        ColumnDefinition("datatype", SqlType.TEXT),
                        ColumnDefinition("initialvalue", SqlType.VARIANT),
                        ColumnDefinition("minvalue", SqlType.VARIANT),
                        ColumnDefinition("maxvalue", SqlType.VARIANT),
                        ColumnDefinition("description", SqlType.TEXT),
                    ],
                    primary_key=["modelid", "varname"],
                    foreign_keys=[],
                )
            )
        if not self.database.has_table(INSTANCE_TABLE):
            self.database.create_table(
                TableSchema(
                    name=INSTANCE_TABLE,
                    columns=[
                        ColumnDefinition("instanceid", SqlType.TEXT, not_null=True),
                        ColumnDefinition("modelid", SqlType.TEXT, not_null=True),
                        ColumnDefinition("createdat", SqlType.TEXT),
                    ],
                    primary_key=["instanceid"],
                )
            )
        if not self.database.has_table(VALUES_TABLE):
            self.database.create_table(
                TableSchema(
                    name=VALUES_TABLE,
                    columns=[
                        ColumnDefinition("modelid", SqlType.TEXT, not_null=True),
                        ColumnDefinition("instanceid", SqlType.TEXT, not_null=True),
                        ColumnDefinition("varname", SqlType.TEXT, not_null=True),
                        ColumnDefinition("value", SqlType.VARIANT),
                    ],
                    primary_key=["modelid", "instanceid", "varname"],
                )
            )
        if self.database.storage is not None and not self.database.has_table(ARCHIVE_TABLE):
            self.database.create_table(
                TableSchema(
                    name=ARCHIVE_TABLE,
                    columns=[
                        ColumnDefinition("modelid", SqlType.TEXT, not_null=True),
                        ColumnDefinition("archive", SqlType.BYTEA, not_null=True),
                    ],
                    primary_key=["modelid"],
                )
            )

    # ------------------------------------------------------------------ #
    # FMU storage
    # ------------------------------------------------------------------ #
    @property
    def storage_dir(self) -> Path:
        return self._storage_dir

    def store_archive(self, archive: FmuArchive) -> Path:
        """Write an FMU archive into FMU storage (idempotent per GUID).

        A file written inside a transaction is removed again on rollback
        (together with its cache entry), mirroring how :meth:`remove_archive`
        defers its unlink to commit.
        """
        path = self._storage_dir / f"{archive.guid}.fmu"
        guid = archive.guid
        if not path.exists():
            archive.write(path)

            def undo_store() -> None:
                self._archive_cache.pop(guid, None)
                if path.exists():
                    path.unlink()

            self.database.on_rollback(undo_store)
        self._persist_archive_blob(archive)
        self._archive_cache[guid] = archive
        return path

    def _persist_archive_blob(self, archive: FmuArchive) -> None:
        """Upsert the archive zip bytes into the blob table (durable DBs only).

        Row inserts go through the normal table path, so the blob is
        WAL-logged with the rest of the registration transaction and rolls
        back with it.
        """
        if not self.database.has_table(ARCHIVE_TABLE):
            return
        table = self.database.table(ARCHIVE_TABLE)
        if table.lookup_pk([archive.guid]) is None:
            table.insert([archive.guid, archive.to_bytes()])

    def load_archive(self, model_id: str) -> FmuArchive:
        """Load an FMU archive by model UUID.

        Lookup order: in-memory cache, then the ``<uuid>.fmu`` file in FMU
        storage, then (durable databases) the blob table - a reopened
        database with a fresh file-store directory still finds every
        archive.
        """
        if model_id in self._archive_cache:
            return self._archive_cache[model_id]
        path = self._storage_dir / f"{model_id}.fmu"
        if path.exists():
            archive = FmuArchive.read(path)
        else:
            archive = self._load_archive_blob(model_id)
            if archive is None:
                raise UnknownModelError(
                    f"model {model_id!r} is not present in FMU storage"
                )
        self._archive_cache[model_id] = archive
        return archive

    def _load_archive_blob(self, model_id: str) -> Optional[FmuArchive]:
        if not self.database.has_table(ARCHIVE_TABLE):
            return None
        row = self.database.table(ARCHIVE_TABLE).lookup_pk([model_id])
        if row is None:
            return None
        return FmuArchive.from_bytes(row["archive"])

    def remove_archive(self, model_id: str) -> None:
        """Remove a stored FMU archive and its cached runtimes.

        The cache evictions are immediate (caches rebuild from the file),
        but the file unlink is deferred to transaction commit: a rolled-back
        ``fmu_delete_model`` restores the catalogue rows, so the archive must
        still be loadable afterwards.
        """
        self._archive_cache.pop(model_id, None)
        path = self._storage_dir / f"{model_id}.fmu"
        if self.database.has_table(ARCHIVE_TABLE):
            # The blob row is table data, so this delete is transactional on
            # its own: a rollback restores it with the catalogue rows.
            blob_table = self.database.table(ARCHIVE_TABLE)
            blob_table.delete_where(
                lambda row: row["modelid"] == model_id,
                candidate_positions=blob_table.pk_positions_for([model_id]),
            )

        def unlink_archive() -> None:
            # The model may have been re-created between the (transactional)
            # delete and the commit; the archive then belongs to the new
            # registration and must survive.
            if self.database.has_table(MODEL_TABLE) and (
                self.database.table(MODEL_TABLE).lookup_pk([model_id]) is not None
            ):
                return
            if path.exists():
                path.unlink()

        self.database.on_commit(unlink_archive)
        stale = [key for key, model in self._runtime_cache.items() if model.guid == model_id]
        for key in stale:
            del self._runtime_cache[key]

    # ------------------------------------------------------------------ #
    # Runtime model cache
    # ------------------------------------------------------------------ #
    def runtime_model(self, instance_id: str) -> FmuModel:
        """The cached runtime FMU for an instance, synced with catalogue values."""
        row = self.instance_row(instance_id)
        model_id = row["modelid"]
        cached = self._runtime_cache.get(instance_id)
        if cached is None or cached.guid != model_id:
            cached = FmuModel(self.load_archive(model_id), instance_name=instance_id)
            self._runtime_cache[instance_id] = cached
        cached.reset()
        settable_types = {VARTYPE_PARAMETER, VARTYPE_INPUT, VARTYPE_STATE}
        settable = {
            row["varname"]
            for row in self.variable_rows(model_id)
            if row["vartype"] in settable_types
        }
        for name, value in self.instance_values(instance_id).items():
            if value is None or name not in settable:
                continue
            try:
                cached.set(name, float(value))
            except (TypeError, ValueError):
                continue  # non-numeric values (strings) are not settable states
        return cached

    def invalidate_runtime(self, instance_id: str) -> None:
        self._runtime_cache.pop(instance_id, None)

    # ------------------------------------------------------------------ #
    # Catalogue row access
    # ------------------------------------------------------------------ #
    def model_row(self, model_id: str) -> Dict[str, Any]:
        row = self.database.table(MODEL_TABLE).lookup_pk([model_id])
        if row is None:
            raise UnknownModelError(f"model {model_id!r} does not exist in the catalogue")
        return row

    def model_id_by_reference(self, reference: str) -> Optional[str]:
        """Find an already-loaded model by its original reference string."""
        for row in self.database.table(MODEL_TABLE).to_dicts():
            if row.get("fmureference") == reference:
                return row["modelid"]
        return None

    def model_id_by_guid(self, guid: str) -> Optional[str]:
        row = self.database.table(MODEL_TABLE).lookup_pk([guid])
        return row["modelid"] if row else None

    def has_instance(self, instance_id: str) -> bool:
        return self.database.table(INSTANCE_TABLE).lookup_pk([instance_id]) is not None

    def instance_row(self, instance_id: str) -> Dict[str, Any]:
        row = self.database.table(INSTANCE_TABLE).lookup_pk([instance_id])
        if row is None:
            raise UnknownInstanceError(
                f"model instance {instance_id!r} does not exist in the catalogue"
            )
        return row

    def instances_of(self, model_id: str) -> List[str]:
        return [
            row["instanceid"]
            for row in self.database.table(INSTANCE_TABLE).to_dicts()
            if row["modelid"] == model_id
        ]

    def variable_rows(self, model_id: str) -> List[Dict[str, Any]]:
        return [
            row
            for row in self.database.table(VARIABLE_TABLE).to_dicts()
            if row["modelid"] == model_id
        ]

    def variable_row(self, model_id: str, var_name: str) -> Dict[str, Any]:
        row = self.database.table(VARIABLE_TABLE).lookup_pk([model_id, var_name])
        if row is None:
            raise UnknownInstanceError(
                f"variable {var_name!r} does not exist for model {model_id!r}"
            )
        return row

    def instance_values(self, instance_id: str) -> Dict[str, Any]:
        """Per-instance variable values, unwrapped from their variant wrappers."""
        values: Dict[str, Any] = {}
        for row in self.database.table(VALUES_TABLE).to_dicts():
            if row["instanceid"] == instance_id:
                value = row["value"]
                values[row["varname"]] = value.value if isinstance(value, Variant) else value
        return values

    def set_instance_value(self, instance_id: str, var_name: str, value: Any) -> None:
        """Update one per-instance variable value."""
        instance = self.instance_row(instance_id)
        model_id = instance["modelid"]
        table = self.database.table(VALUES_TABLE)
        existing = table.lookup_pk([model_id, instance_id, var_name])
        if existing is None:
            table.insert([model_id, instance_id, var_name, Variant.wrap(value)])
        else:
            table.update_where(
                lambda row: row["instanceid"] == instance_id and row["varname"] == var_name,
                lambda row: {"value": Variant.wrap(value)},
            )
        self.invalidate_runtime(instance_id)
