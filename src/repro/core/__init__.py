"""pgFMU core: in-DBMS storage, simulation and calibration of FMU models.

This subpackage is the reproduction of the paper's contribution.  It layers
on top of the SQL engine (:mod:`repro.sqldb`), the FMI runtime
(:mod:`repro.fmi`), the Modelica compiler (:mod:`repro.modelica`) and the
estimation stack (:mod:`repro.estimation`):

* :mod:`repro.core.catalog` - the model catalogue of Figure 4 (``Model``,
  ``ModelVariable``, ``ModelInstance``, ``ModelInstanceValues``) plus FMU
  storage.
* :mod:`repro.core.instances` - instance management: ``fmu_create``,
  ``fmu_copy``, ``fmu_variables``, ``fmu_get``, ``fmu_set_*``, ``fmu_reset``,
  ``fmu_delete_instance``, ``fmu_delete_model``.
* :mod:`repro.core.parest` - parameter estimation (Algorithms 2 and 3),
  including the multi-instance (MI) optimization.
* :mod:`repro.core.simulate` - model simulation (Algorithm 4).
* :mod:`repro.core.session` - the :class:`PgFmu` facade owning the database
  and wiring everything together.
* :mod:`repro.core.udfs` - registration of all ``fmu_*`` functions as SQL
  UDFs so every query from the paper runs against the engine.

Typical use::

    from repro.core import PgFmu

    pg = PgFmu()
    pg.database.execute("CREATE TABLE measurements (...)")
    instance = pg.sql("SELECT fmu_create('/tmp/hp1.fmu', 'HP1Instance1')").scalar()
    pg.sql("SELECT fmu_parest('{HP1Instance1}', '{SELECT * FROM measurements}', '{Cp, R}')")
    rows = pg.sql("SELECT * FROM fmu_simulate('HP1Instance1', 'SELECT * FROM measurements')")
"""

from repro.core.catalog import ModelCatalog
from repro.core.session import PgFmu

__all__ = ["ModelCatalog", "PgFmu"]
