"""pgFMU core: in-DBMS storage, simulation and calibration of FMU models.

This subpackage is the reproduction of the paper's contribution.  It layers
on top of the SQL engine (:mod:`repro.sqldb`), the FMI runtime
(:mod:`repro.fmi`), the Modelica compiler (:mod:`repro.modelica`) and the
estimation stack (:mod:`repro.estimation`):

* :mod:`repro.core.catalog` - the model catalogue of Figure 4 (``Model``,
  ``ModelVariable``, ``ModelInstance``, ``ModelInstanceValues``) plus FMU
  storage.
* :mod:`repro.core.instances` - instance management: ``fmu_create``,
  ``fmu_copy``, ``fmu_variables``, ``fmu_get``, ``fmu_set_*``, ``fmu_reset``,
  ``fmu_delete_instance``, ``fmu_delete_model``.
* :mod:`repro.core.parest` - parameter estimation (Algorithms 2 and 3),
  including the multi-instance (MI) optimization.
* :mod:`repro.core.simulate` - model simulation (Algorithm 4), including the
  shared-input-pass batch path behind ``simulate_many``.
* :mod:`repro.core.session` - :class:`Session` (the modern layered surface)
  and :class:`PgFmu` (the original facade, kept as deprecated shims).
* :mod:`repro.core.handles` - :class:`ModelHandle` / :class:`InstanceHandle`,
  the fluent object layer returned by ``session.create(...)``.
* :mod:`repro.core.udfs` - the ``pgfmu`` extension: every ``fmu_*`` function
  declared with the UDF decorators and installed via
  ``database.install_extension``.

Typical use::

    import repro

    conn = repro.connect()
    cur = conn.cursor()
    cur.execute("CREATE TABLE measurements (...)")
    inst = conn.session.create("/tmp/hp1.fmu", "HP1Instance1")
    inst.calibrate(measurements="SELECT * FROM measurements", parameters=["Cp", "R"])
    cur.execute("SELECT * FROM fmu_simulate('HP1Instance1', 'SELECT * FROM measurements')")
"""

from repro.core.catalog import ModelCatalog
from repro.core.handles import InstanceHandle, ModelHandle
from repro.core.session import PgFmu, Session
from repro.core.udfs import pgfmu_extension

__all__ = [
    "ModelCatalog",
    "Session",
    "PgFmu",
    "InstanceHandle",
    "ModelHandle",
    "pgfmu_extension",
]
