"""Fluent object handles: the middle layer of the public API.

:class:`ModelHandle` and :class:`InstanceHandle` wrap the stringly-typed
catalogue identifiers in first-class objects with chainable methods::

    inst = session.create(hp1_source(), "HP1Instance1")
    result = (
        inst.set_initial("Cp", 2.0)
            .set_bounds("R", 0.1, 10.0)
            .simulate("SELECT * FROM measurements")
    )
    inst.calibrate(measurements="SELECT * FROM measurements", parameters=["Cp", "R"])
    print(inst.last_calibration.error, inst.parameters)

Both handles subclass :class:`str` and compare equal to the raw catalogue
identifier, so they are drop-in replacements wherever an id string was
expected before: they format into SQL literals, key dictionaries, and pass
through the UDF layer unchanged.  All catalogue state stays in the
database, so stale handles simply raise the usual catalogue errors.  The one
piece of handle-local state is :attr:`InstanceHandle.last_calibration`: it
lives on the specific handle object ``calibrate`` was called on, not in the
catalogue - a fresh ``session.instance(...)`` lookup starts at ``None``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.parest import DEFAULT_SIMILARITY_THRESHOLD, ParestOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.session import Session
    from repro.fmi.results import SimulationResult


class _Handle(str):
    """Base: a catalogue identifier bound to the session that owns it."""

    _session: "Session"

    def __new__(cls, identifier: str, session: "Session"):
        handle = super().__new__(cls, identifier)
        handle._session = session
        return handle

    @property
    def session(self) -> "Session":
        return self._session

    @property
    def id(self) -> str:
        """The raw catalogue identifier as a plain string."""
        return str(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


class ModelHandle(_Handle):
    """A handle to one row of the ``Model`` catalogue table.

    Obtained from :meth:`Session.model <repro.core.session.Session.model>`
    or :attr:`InstanceHandle.model`.  The handle *is* the model UUID (a
    :class:`str` subclass), extended with catalogue operations::

        model = session.model(model_id)
        model.name                   # 'HP1'
        model.instances()            # [InstanceHandle('HP1Instance1'), ...]
        model.new_instance("HP1b")   # register another instance
        model.delete()               # cascade-delete model + instances
    """

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def row(self) -> Dict[str, Any]:
        """The model's catalogue row (name, reference, default experiment)."""
        return self._session.catalog.model_row(self.id)

    @property
    def name(self) -> str:
        return self.row()["modelname"]

    def instances(self) -> List["InstanceHandle"]:
        """Handles for every instance of this model."""
        return [
            InstanceHandle(instance_id, self._session)
            for instance_id in self._session.catalog.instances_of(self.id)
        ]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def new_instance(self, instance_id: Optional[str] = None) -> "InstanceHandle":
        """Register another instance of this model."""
        created = self._session.instances.new_instance(self.id, instance_id)
        return InstanceHandle(created, self._session)

    def delete(self) -> str:
        """Delete the model and all of its instances; returns the model id."""
        return self._session.instances.delete_model(self.id)


class InstanceHandle(_Handle):
    """A handle to one model instance, with fluent catalogue operations.

    Obtained from :meth:`Session.create <repro.core.session.Session.create>`
    / :meth:`Session.instance <repro.core.session.Session.instance>`.  The
    handle *is* the instance id (a :class:`str` subclass), so it formats
    into SQL literals and keys dictionaries unchanged.

    Mutating methods (``set_initial``, ``set_bounds``, ``reset``, ...) return
    the handle itself so calls chain; computing methods (``simulate``,
    ``variables``, ``get``) return their results.  ``calibrate`` is fluent
    too - the most recent :class:`~repro.core.parest.ParestOutcome` is kept
    on :attr:`last_calibration`::

        inst = session.create(hp1_source(), "HP1Instance1")
        result = (
            inst.set_initial("Cp", 2.0)
                .set_bounds("R", 0.1, 10.0)
                .simulate("SELECT * FROM measurements")
        )
        inst.calibrate("SELECT * FROM measurements", parameters=["Cp", "R"])
        inst.last_calibration.error    # calibration fit error
        inst.parameters                # current estimable parameter values
    """

    last_calibration: Optional[ParestOutcome] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> ModelHandle:
        """Handle to the parent model."""
        return ModelHandle(self._session.instances.model_id_of(self.id), self._session)

    def variables(self) -> List[Dict[str, Any]]:
        """Per-instance variable rows (the ``fmu_variables`` shape)."""
        return self._session.instances.variables(self.id)

    def get(self, var_name: str) -> Dict[str, Any]:
        """Initial/min/max values of one variable (the ``fmu_get`` shape)."""
        return self._session.instances.get(self.id, var_name)

    @property
    def parameters(self) -> Dict[str, float]:
        """Current values of the instance's estimable parameters."""
        return self._session.instance_parameters(self.id)

    # ------------------------------------------------------------------ #
    # Fluent mutation
    # ------------------------------------------------------------------ #
    def set_initial(self, var_name: str, value: Any) -> "InstanceHandle":
        self._session.instances.set_initial(self.id, var_name, value)
        return self

    def set_minimum(self, var_name: str, value: Any) -> "InstanceHandle":
        self._session.instances.set_minimum(self.id, var_name, value)
        return self

    def set_maximum(self, var_name: str, value: Any) -> "InstanceHandle":
        self._session.instances.set_maximum(self.id, var_name, value)
        return self

    def set_bounds(self, var_name: str, minimum: Any, maximum: Any) -> "InstanceHandle":
        """Set both estimation bounds of a variable in one call."""
        return self.set_minimum(var_name, minimum).set_maximum(var_name, maximum)

    def reset(self) -> "InstanceHandle":
        """Restore the model's initial values for this instance."""
        self._session.instances.reset(self.id)
        return self

    # ------------------------------------------------------------------ #
    # Simulation and calibration
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> "SimulationResult":
        """Simulate the instance and return the trajectory object."""
        return self._session.simulator.simulate_result(self.id, input_sql, time_from, time_to)

    def simulate_rows(
        self,
        input_sql: Optional[str] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
    ) -> List[List[Any]]:
        """Simulate and return long-format rows (the SQL UDF shape)."""
        return self._session.simulator.simulate_rows(self.id, input_sql, time_from, time_to)

    def calibrate(
        self,
        measurements: str,
        parameters: Optional[Sequence[str]] = None,
        threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
    ) -> "InstanceHandle":
        """Calibrate against a measurement query; chainable.

        The detailed outcome (error, per-parameter estimates, timings) is
        stored on :attr:`last_calibration`.
        """
        outcomes = self._session.estimator.estimate(
            [self.id], [measurements], parameters=parameters, threshold=threshold
        )
        self.last_calibration = outcomes[0]
        return self

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def copy(self, new_instance_id: Optional[str] = None) -> "InstanceHandle":
        """Duplicate the instance (values included); returns the new handle."""
        created = self._session.instances.copy(self.id, new_instance_id)
        return InstanceHandle(created, self._session)

    def delete(self) -> str:
        """Delete the instance from the catalogue; returns its id."""
        return self._session.instances.delete_instance(self.id)
