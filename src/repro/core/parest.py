"""Parameter estimation UDFs: Algorithm 2 (single instance) and Algorithm 3 (MI).

``fmu_parest`` takes a list of instances and a list of SQL queries producing
their measurements.  For a single instance it runs the full Global+Local
search (G+LaG).  For multiple instances of the same parent model it applies
the multi-instance (MI) optimization: the first instance is calibrated with
G+LaG, and every further instance whose measurements are sufficiently similar
(relative L2 dissimilarity below ``threshold``) is warm-started from the
first optimum and refined with Local-Only search (LO), skipping the expensive
global stage entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.catalog import ModelCatalog
from repro.core.instances import InstanceManager
from repro.errors import EstimationError, PgFmuError
from repro.estimation.estimator import Estimation, EstimationResult
from repro.estimation.metrics import relative_l2_dissimilarity
from repro.estimation.objective import MeasurementSet
from repro.solvers.retry import RetryPolicy

#: Default dissimilarity threshold (20 %), chosen by the paper from Figure 6.
DEFAULT_SIMILARITY_THRESHOLD = 0.2


@dataclass
class ParestOutcome:
    """Result of calibrating one instance inside a ``fmu_parest`` call."""

    instance_id: str
    error: float
    parameters: Dict[str, float]
    method: str
    n_evaluations: int
    global_time: float
    local_time: float
    used_mi_optimization: bool = False
    dissimilarity: Optional[float] = None

    @property
    def total_time(self) -> float:
        return self.global_time + self.local_time


@dataclass
class ParameterEstimator:
    """Implements ``fmu_parest`` on top of the catalogue and estimation stack.

    Attributes
    ----------
    catalog / instances:
        The model catalogue and instance manager.
    ga_options / local_options:
        Budget options forwarded to the estimation stack.  The experiment
        harness shrinks these to keep benchmark runtimes manageable; the
        defaults match a thorough calibration.
    seed:
        Seed for the global search.
    batch_enabled:
        Score whole GA generations (and local gradient stencils) as one
        batched ``(pop, d)`` fleet solve instead of one simulation per
        candidate (see :class:`~repro.estimation.estimator.Estimation`).
        Results are identical either way for a fixed seed; per-call
        overrides go through :meth:`estimate` / :meth:`estimate_single`.
    """

    catalog: ModelCatalog
    instances: InstanceManager
    ga_options: Dict = field(default_factory=dict)
    local_options: Dict = field(default_factory=dict)
    seed: int = 1
    batch_enabled: bool = True
    #: Optional :class:`~repro.solvers.retry.RetryPolicy` threaded through to
    #: the calibration objective: candidates whose simulation diverges walk
    #: the degradation ladder (tightened numerics, fixed-step fallback)
    #: before being penalized with ``inf``.  ``None`` (the default) keeps
    #: the pinned estimation results byte-identical.
    retry_policy: Optional[RetryPolicy] = None

    # ------------------------------------------------------------------ #
    # Measurement loading
    # ------------------------------------------------------------------ #
    def load_measurements(self, input_sql: str) -> MeasurementSet:
        """Execute an ``input_sql`` query and convert it to a measurement set."""
        if not input_sql or not str(input_sql).strip():
            raise PgFmuError("fmu_parest requires a measurement query (input_sql)")
        rows = self.catalog.database.query_dicts(str(input_sql))
        if not rows:
            raise PgFmuError(f"measurement query returned no rows: {input_sql!r}")
        return MeasurementSet.from_rows(rows)

    # ------------------------------------------------------------------ #
    # Single instance (Algorithm 2)
    # ------------------------------------------------------------------ #
    def estimate_single(
        self,
        instance_id: str,
        input_sql: str,
        parameters: Optional[Sequence[str]] = None,
        method: str = "global+local",
        initial_values: Optional[Dict[str, float]] = None,
        measurements: Optional[MeasurementSet] = None,
        batch_enabled: Optional[bool] = None,
    ) -> ParestOutcome:
        """Calibrate one instance and write the estimates back to the catalogue.

        ``batch_enabled`` overrides the estimator-wide default for this call
        (``None`` keeps it).
        """
        measurement_set = measurements if measurements is not None else self.load_measurements(input_sql)
        parameter_names = list(parameters) if parameters else self.instances.parameter_names(instance_id)
        if not parameter_names:
            raise EstimationError(
                f"instance {instance_id!r} has no parameters to estimate"
            )
        model = self.catalog.runtime_model(instance_id)
        estimation = Estimation(
            model=model,
            measurements=measurement_set,
            parameters=parameter_names,
            bounds=self.instances.bounds(instance_id),
            ga_options=dict(self.ga_options),
            local_options=dict(self.local_options),
            seed=self.seed,
            batch_enabled=self.batch_enabled if batch_enabled is None else bool(batch_enabled),
            retry_policy=self.retry_policy,
        )
        result: EstimationResult = estimation.estimate(method=method, initial_values=initial_values)
        for name, value in result.parameters.items():
            self.catalog.set_instance_value(instance_id, name, value)
        return ParestOutcome(
            instance_id=instance_id,
            error=result.error,
            parameters=result.parameters,
            method=result.method,
            n_evaluations=result.n_evaluations,
            global_time=result.global_time,
            local_time=result.local_time,
        )

    # ------------------------------------------------------------------ #
    # Multi-instance (Algorithm 3)
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        instance_ids: Sequence[str],
        input_sqls: Sequence[str],
        parameters: Optional[Sequence[str]] = None,
        threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
        use_mi_optimization: bool = True,
        batch_enabled: Optional[bool] = None,
    ) -> List[ParestOutcome]:
        """Calibrate one or more instances, applying the MI optimization.

        Parameters
        ----------
        instance_ids / input_sqls:
            Parallel lists of instances and their measurement queries.
        parameters:
            Optional explicit parameter list (shared by all instances).
        threshold:
            Relative L2 dissimilarity below which the LO warm start is used.
        use_mi_optimization:
            Disable to force the full G+LaG for every instance (this is the
            pgFMU- configuration of the paper's experiments).
        batch_enabled:
            Per-call override of the population-batched evaluation escape
            hatch (``None`` keeps the estimator-wide default).
        """
        instance_ids = [str(i) for i in instance_ids]
        input_sqls = [str(q) for q in input_sqls]
        if not instance_ids:
            raise PgFmuError("fmu_parest requires at least one instance")
        if len(instance_ids) != len(input_sqls):
            raise PgFmuError(
                f"fmu_parest received {len(instance_ids)} instances but "
                f"{len(input_sqls)} measurement queries"
            )

        outcomes: List[ParestOutcome] = []
        reference_outcome: Optional[ParestOutcome] = None
        reference_measurements: Optional[MeasurementSet] = None
        reference_model_id: Optional[str] = None

        for index, (instance_id, input_sql) in enumerate(zip(instance_ids, input_sqls)):
            measurements = self.load_measurements(input_sql)
            model_id = self.instances.model_id_of(instance_id)

            if index == 0 or not use_mi_optimization:
                outcome = self.estimate_single(
                    instance_id, input_sql, parameters, measurements=measurements,
                    batch_enabled=batch_enabled,
                )
                if index == 0:
                    reference_outcome = outcome
                    reference_measurements = measurements
                    reference_model_id = model_id
                outcomes.append(outcome)
                continue

            if model_id != reference_model_id or reference_outcome is None:
                outcomes.append(
                    self.estimate_single(
                        instance_id, input_sql, parameters, measurements=measurements,
                        batch_enabled=batch_enabled,
                    )
                )
                continue

            dissimilarity = self.measurement_dissimilarity(
                reference_measurements, measurements
            )
            if dissimilarity >= threshold:
                outcome = self.estimate_single(
                    instance_id, input_sql, parameters, measurements=measurements,
                    batch_enabled=batch_enabled,
                )
                outcome.dissimilarity = dissimilarity
                outcomes.append(outcome)
                continue

            # MI optimization: warm-start from the reference optimum, LO only.
            for name, value in reference_outcome.parameters.items():
                self.catalog.set_instance_value(instance_id, name, value)
            outcome = self.estimate_single(
                instance_id,
                input_sql,
                parameters,
                method="local",
                initial_values=reference_outcome.parameters,
                measurements=measurements,
                batch_enabled=batch_enabled,
            )
            outcome.used_mi_optimization = True
            outcome.dissimilarity = dissimilarity
            outcomes.append(outcome)

        return outcomes

    # ------------------------------------------------------------------ #
    # Similarity measure
    # ------------------------------------------------------------------ #
    @staticmethod
    def measurement_dissimilarity(
        reference: Optional[MeasurementSet], candidate: MeasurementSet
    ) -> float:
        """Maximum relative L2 dissimilarity across shared measured series."""
        if reference is None:
            return float("inf")
        shared = [
            name for name in reference.variable_names() if name in candidate.series
        ]
        if not shared:
            return float("inf")
        dissimilarities = []
        for name in shared:
            a = reference.series[name]
            b = candidate.series[name]
            n = min(len(a), len(b))
            if n < 2:
                continue
            dissimilarities.append(relative_l2_dissimilarity(a[:n], b[:n]))
        if not dissimilarities:
            return float("inf")
        return float(np.max(dissimilarities))
