"""Plain-text table rendering shared by the experiment harness."""

from __future__ import annotations

from typing import Any, List, Sequence


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return ", ".join(_format_cell(v) for v in value)
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a fixed-width text table with an optional title line."""
    header_cells = [str(h) for h in headers]
    body = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(header_cells)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
        lines.append(" | ".join(padded))
    return "\n".join(lines)
