"""One function per table/figure of the paper's evaluation section.

All experiments are scaled-down by default so the full suite runs in minutes
on a laptop; pass larger ``ScenarioSettings`` / ``hours`` / ``n_instances``
(or set the environment variable ``PGFMU_FULL_SCALE=1`` in the benchmarks)
for paper-scale runs.  Every function returns an :class:`ExperimentResult`
containing the rows/series the paper reports plus metadata with the headline
quantities (speedups, improvements) that EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.baseline.code_metrics import code_lines_table, totals
from repro.core.session import PgFmu
from repro.data.classroom import generate_classroom_dataset
from repro.data.generators import generate_dataset_for
from repro.data.loaders import load_dataset
from repro.data.nist import generate_hp0_dataset, generate_hp1_dataset
from repro.data.synthetic import scale_dataset
from repro.estimation.metrics import rmse
from repro.estimation.objective import MeasurementSet
from repro.harness.reporting import format_table
from repro.models.heatpump import heat_pump_abcde_source
from repro.models.registry import MODEL_REGISTRY, get_model_spec
from repro.workflows.scenarios import (
    ScenarioSettings,
    run_mi_scenario,
    run_si_scenario,
)
from repro.workflows.usability import UsabilityStudy


@dataclass
class ExperimentResult:
    """A reproduced table or figure: rows plus headline metadata."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_text(self) -> str:
        text = format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
        if self.meta:
            notes = "\n".join(f"  {key}: {value}" for key, value in self.meta.items())
            text = f"{text}\nheadline:\n{notes}"
        return text


# --------------------------------------------------------------------------- #
# Table 1 - workflow code lines
# --------------------------------------------------------------------------- #
def table1_code_lines() -> ExperimentResult:
    """Code lines per workflow operation: Python stack vs pgFMU."""
    rows = []
    for entry in code_lines_table():
        rows.append(
            [
                entry.operation,
                ", ".join(entry.packages),
                entry.python_lines,
                entry.pgfmu_lines if entry.pgfmu_lines else "-",
            ]
        )
    summary = totals()
    rows.append(["Total", "", summary["python"], summary["pgfmu"]])
    return ExperimentResult(
        experiment_id="Table 1",
        title="Workflow operations and code lines (Python vs pgFMU)",
        headers=["Operation", "Packages (Python)", "Python lines", "pgFMU lines"],
        rows=rows,
        meta={
            "python_total_lines": summary["python"],
            "pgfmu_total_lines": summary["pgfmu"],
            "code_reduction_factor": summary["ratio"],
            "paper_reported": "88 vs 4 lines (22x fewer)",
        },
    )


# --------------------------------------------------------------------------- #
# Table 2 - feature comparison (qualitative)
# --------------------------------------------------------------------------- #
def table2_feature_matrix() -> ExperimentResult:
    """Feature comparison between in-DBMS analytics tools and pgFMU."""
    rows = [
        ["Data query language", "SQL", "SQL", "SQL"],
        ["Model integration approach", "UDFs", "Stored procedures", "UDFs"],
        ["In-DBMS machine learning", True, True, False],
        ["In-DBMS physical models", False, False, True],
        ["- FMU management", False, False, True],
        ["- FMU simulation", False, False, True],
        ["- FMU parameter estimation", False, False, True],
    ]
    return ExperimentResult(
        experiment_id="Table 2",
        title="In-DBMS analytics tools vs pgFMU (feature matrix)",
        headers=["Feature", "MADlib", "MS SQL Server ML Services", "pgFMU"],
        rows=rows,
        meta={"note": "qualitative table reproduced verbatim from the paper"},
    )


# --------------------------------------------------------------------------- #
# Table 3 / Table 4 - UDF output examples
# --------------------------------------------------------------------------- #
def table3_variables_example() -> ExperimentResult:
    """``fmu_variables`` output for the running-example heat pump instance."""
    session = PgFmu(register_ml=False)
    session.create(heat_pump_abcde_source(), "HP1Instance1")
    result = session.execute(
        "SELECT * FROM fmu_variables('HP1Instance1') AS f WHERE f.vartype = 'parameter'"
    )
    return ExperimentResult(
        experiment_id="Table 3",
        title="fmu_variables example query output (parameters of HP1Instance1)",
        headers=result.columns,
        rows=result.rows,
        meta={"n_parameters": len(result.rows)},
    )


def table4_simulate_example(hours: float = 48.0) -> ExperimentResult:
    """``fmu_simulate`` long-format output for the running-example instance."""
    session = PgFmu(register_ml=False)
    dataset = generate_hp1_dataset(hours=int(hours))
    load_dataset(session.database, dataset, table_name="measurements")
    archive_path = session.catalog.storage_dir / "hp1_table4.fmu"
    get_model_spec("HP1").builder().write(archive_path)
    session.create(str(archive_path), "HP1Instance1")
    result = session.execute(
        "SELECT simulationtime, instanceid, varname, value "
        "FROM fmu_simulate('HP1Instance1', 'SELECT * FROM measurements') "
        "WHERE varname IN ('y', 'x') ORDER BY simulationtime LIMIT 10"
    )
    return ExperimentResult(
        experiment_id="Table 4",
        title="fmu_simulate example query output",
        headers=result.columns,
        rows=result.rows,
        meta={"n_rows_shown": len(result.rows)},
    )


# --------------------------------------------------------------------------- #
# Table 5 / Table 6 - models and datasets
# --------------------------------------------------------------------------- #
def table5_models() -> ExperimentResult:
    """The FMU model inventory (inputs, outputs, parameters)."""
    rows = []
    for spec in MODEL_REGISTRY.values():
        rows.append(
            [
                spec.name,
                spec.dataset_description,
                ", ".join(spec.inputs) if spec.inputs else "No inputs",
                ", ".join(spec.outputs + [v for v in spec.observed if v not in spec.outputs]),
                ", ".join(spec.estimated_parameters),
            ]
        )
    return ExperimentResult(
        experiment_id="Table 5",
        title="FMU models",
        headers=["ModelID", "Measurements dataset", "Inputs", "Outputs", "Parameters"],
        rows=rows,
        meta={"n_models": len(rows)},
    )


def table6_dataset_excerpts(n_rows: int = 3) -> ExperimentResult:
    """First rows of the heat pump and classroom datasets."""
    hp = generate_hp1_dataset(hours=24)
    classroom = generate_classroom_dataset(hours=24)
    rows: List[List[Any]] = []
    for i, record in enumerate(hp.to_dicts()[:n_rows]):
        rows.append(["HP", i + 1, ", ".join(f"{k}={v:.3f}" for k, v in record.items())])
    for i, record in enumerate(classroom.to_dicts()[:n_rows]):
        rows.append(["Classroom", i + 1, ", ".join(f"{k}={v:.3f}" for k, v in record.items())])
    return ExperimentResult(
        experiment_id="Table 6",
        title="Dataset excerpts for HP0/HP1 and Classroom",
        headers=["Dataset", "Row", "Values"],
        rows=rows,
        meta={"hp_columns": hp.columns, "classroom_columns": classroom.columns},
    )


# --------------------------------------------------------------------------- #
# Table 7 / Table 8 - SI scenario quality and time
# --------------------------------------------------------------------------- #
def _default_settings(model_name: str, **overrides) -> ScenarioSettings:
    settings = ScenarioSettings(model_name=model_name)
    for key, value in overrides.items():
        setattr(settings, key, value)
    return settings


def table7_si_quality(
    model_names: Sequence[str] = ("HP0", "HP1", "Classroom"),
    settings_overrides: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """SI calibration quality: estimated parameters and RMSE per configuration."""
    rows: List[List[Any]] = []
    meta: Dict[str, Any] = {}
    for model_name in model_names:
        settings = _default_settings(model_name, **(settings_overrides or {}))
        outcome = run_si_scenario(settings)
        spec = get_model_spec(model_name)
        for label, result in outcome.results().items():
            rows.append(
                [
                    model_name,
                    label,
                    ", ".join(f"{k}={v:.4g}" for k, v in sorted(result.parameters.items())),
                    result.training_error,
                    result.validation_error,
                ]
            )
        python_error = outcome.python.training_error
        plus_error = outcome.pgfmu_plus.training_error
        relative_gap = abs(python_error - plus_error) / max(python_error, 1e-12)
        meta[f"{model_name}_relative_rmse_gap"] = round(relative_gap, 6)
        meta[f"{model_name}_true_parameters"] = spec.true_parameters
    meta["paper_reported"] = "RMSE differences between configurations are at most ~0.02%"
    return ExperimentResult(
        experiment_id="Table 7",
        title="SI scenario, model calibration comparison",
        headers=["Model", "Configuration", "Estimated parameters", "Training RMSE", "Validation RMSE"],
        rows=rows,
        meta=meta,
    )


def table8_si_time(
    model_names: Sequence[str] = ("HP0", "HP1", "Classroom"),
    settings_overrides: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """SI per-operation execution time for Python and pgFMU configurations."""
    step_order = [
        "load_fmu",
        "read_measurements",
        "recalibrate",
        "validate_update",
        "simulate",
        "export_predictions",
        "further_analysis",
    ]
    rows: List[List[Any]] = []
    meta: Dict[str, Any] = {}
    for model_name in model_names:
        settings = _default_settings(model_name, **(settings_overrides or {}))
        outcome = run_si_scenario(settings)
        for label, result in outcome.results().items():
            step_seconds = {step.name: step.seconds for step in result.steps}
            rows.append(
                [model_name, label]
                + [round(step_seconds.get(step, 0.0), 4) for step in step_order]
                + [round(result.total_seconds, 4)]
            )
        python_total = outcome.python.total_seconds
        plus_total = outcome.pgfmu_plus.total_seconds
        calibration_share = outcome.pgfmu_plus.step_seconds("recalibrate") / max(plus_total, 1e-9)
        meta[f"{model_name}_python_over_pgfmu_total"] = round(python_total / max(plus_total, 1e-9), 3)
        meta[f"{model_name}_calibration_share_of_total"] = round(calibration_share, 3)
    meta["paper_reported"] = "Python and pgFMU within ~0.15% of each other; calibration >99% of time"
    return ExperimentResult(
        experiment_id="Table 8",
        title="Configurations comparison, SI scenario (seconds per operation)",
        headers=["Model", "Configuration"] + step_order + ["total"],
        rows=rows,
        meta=meta,
    )


# --------------------------------------------------------------------------- #
# Figure 6 - LO vs G+LaG under dataset dissimilarity
# --------------------------------------------------------------------------- #
def figure6_threshold_sweep(
    deltas: Sequence[float] = (1.0, 1.05, 1.1, 1.2, 1.3, 1.45, 1.6),
    hours: float = 120.0,
    ga_options: Optional[Dict[str, Any]] = None,
    local_options: Optional[Dict[str, Any]] = None,
    seed: int = 1,
) -> ExperimentResult:
    """RMSE and runtime of LO vs G+LaG for increasingly dissimilar datasets (HP1)."""
    spec = get_model_spec("HP1")
    ga_options = ga_options or {"population_size": 16, "generations": 10}
    local_options = local_options or {"max_iterations": 40}

    session = PgFmu(ga_options=ga_options, local_options=local_options, seed=seed)
    base = generate_dataset_for("HP1", hours=hours, seed=seed + 100)
    load_dataset(session.database, base, table_name="measurements_ref")
    archive_path = session.catalog.storage_dir / "hp1_fig6.fmu"
    spec.builder().write(archive_path)
    session.create(str(archive_path), "HP1Reference")

    reference = session.estimator.estimate_single(
        "HP1Reference", "SELECT * FROM measurements_ref", spec.estimated_parameters
    )

    rows: List[List[Any]] = []
    for i, delta in enumerate(deltas):
        scaled = scale_dataset(base, delta, name=f"hp1_fig6_{i}", columns=["x", "y"])
        table = load_dataset(session.database, scaled, table_name=f"measurements_fig6_{i}")
        input_sql = f"SELECT * FROM {table}"
        dissimilarity = session.estimator.measurement_dissimilarity(
            session.estimator.load_measurements("SELECT * FROM measurements_ref"),
            session.estimator.load_measurements(input_sql),
        )

        # Full G+LaG calibration on a fresh instance.
        full_id = f"HP1Full{i}"
        session.instance("HP1Reference").copy(full_id).reset()
        started = time.perf_counter()
        full = session.estimator.estimate_single(full_id, input_sql, spec.estimated_parameters)
        full_seconds = time.perf_counter() - started

        # LO calibration warm-started from the reference optimum.
        lo_id = f"HP1Lo{i}"
        session.instance("HP1Reference").copy(lo_id)
        started = time.perf_counter()
        lo = session.estimator.estimate_single(
            lo_id,
            input_sql,
            spec.estimated_parameters,
            method="local",
            initial_values=reference.parameters,
        )
        lo_seconds = time.perf_counter() - started

        rows.append(
            [
                round(delta, 3),
                round(dissimilarity, 4),
                round(full.error, 4),
                round(lo.error, 4),
                round(full_seconds, 3),
                round(lo_seconds, 3),
            ]
        )

    lo_faster = all(row[5] < row[4] for row in rows)
    small = [row for row in rows if row[1] < 0.2]
    rmse_gap_small = max((abs(row[3] - row[2]) / max(row[2], 1e-9) for row in small), default=0.0)
    return ExperimentResult(
        experiment_id="Figure 6",
        title="Avg. RMSE & execution time of LO and G+LaG vs dataset dissimilarity (HP1)",
        headers=["delta", "dissimilarity", "rmse_g_lag", "rmse_lo", "seconds_g_lag", "seconds_lo"],
        rows=rows,
        meta={
            "lo_always_faster": lo_faster,
            "max_relative_rmse_gap_below_20pct_dissimilarity": round(rmse_gap_small, 4),
            "reference_parameters": reference.parameters,
            "paper_reported": "no RMSE difference until ~30% dissimilarity; G+LaG much slower than LO",
        },
    )


# --------------------------------------------------------------------------- #
# Figure 7 - MI scenario execution time
# --------------------------------------------------------------------------- #
def figure7_mi_scaling(
    model_names: Sequence[str] = ("HP0", "HP1", "Classroom"),
    instance_counts: Sequence[int] = (2, 4, 6),
    settings_overrides: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """Workflow execution time vs number of instances for the three configurations."""
    rows: List[List[Any]] = []
    meta: Dict[str, Any] = {}
    for model_name in model_names:
        speedups = []
        for count in instance_counts:
            settings = _default_settings(
                model_name, n_instances=count, **(settings_overrides or {})
            )
            outcome = run_mi_scenario(settings)
            rows.append(
                [
                    model_name,
                    count,
                    round(outcome.total_seconds["python"], 3),
                    round(outcome.total_seconds["pgfmu-"], 3),
                    round(outcome.total_seconds["pgfmu+"], 3),
                    round(outcome.speedup_over_python, 3),
                    outcome.mi_hits,
                    round(outcome.average_errors["python"], 4),
                    round(outcome.average_errors["pgfmu+"], 4),
                ]
            )
            speedups.append(outcome.speedup_over_python)
        meta[f"{model_name}_max_speedup"] = round(max(speedups), 3)
    meta["paper_reported"] = "pgFMU+ 5.31x / 5.51x / 8.43x faster at 100 instances (avg 6.42x)"
    return ExperimentResult(
        experiment_id="Figure 7",
        title="MI scenario execution time (Python vs pgFMU- vs pgFMU+)",
        headers=[
            "Model",
            "instances",
            "python_s",
            "pgfmu-_s",
            "pgfmu+_s",
            "speedup_pgfmu+",
            "mi_warm_starts",
            "avg_rmse_python",
            "avg_rmse_pgfmu+",
        ],
        rows=rows,
        meta=meta,
    )


# --------------------------------------------------------------------------- #
# Figure 8 - usability study (simulated)
# --------------------------------------------------------------------------- #
def figure8_usability(n_participants: int = 30, seed: int = 42) -> ExperimentResult:
    """Simulated learning + development time per participant."""
    study = UsabilityStudy(n_participants=n_participants, seed=seed)
    outcomes = study.run()
    summary = study.summary(outcomes)
    rows = [
        [o.user_id, o.role, round(o.python_minutes, 1), round(o.pgfmu_minutes, 1), round(o.speedup, 2)]
        for o in outcomes
    ]
    return ExperimentResult(
        experiment_id="Figure 8",
        title="Users learning and development time (simulated study)",
        headers=["user", "role", "python_minutes", "pgfmu_minutes", "speedup"],
        rows=rows,
        meta={**summary, "paper_reported": "all users < 20 min with pgFMU; mean 11.74x faster"},
    )


# --------------------------------------------------------------------------- #
# MADlib combination experiments
# --------------------------------------------------------------------------- #
def madlib_occupancy_experiment(
    hours: float = 240.0,
    seed: int = 5,
    ga_options: Optional[Dict[str, Any]] = None,
    arima_order: Sequence[int] = (3, 0, 1),
) -> ExperimentResult:
    """ARIMA-predicted occupancy improves the Classroom FMU's accuracy."""
    spec = get_model_spec("Classroom")
    ga_options = ga_options or {"population_size": 16, "generations": 8}
    session = PgFmu(ga_options=ga_options, seed=seed)
    dataset = generate_classroom_dataset(hours=hours, seed=seed + 10)
    load_dataset(session.database, dataset, table_name="classroom")

    n_total = len(dataset)
    n_train = int(round(n_total * 0.8))
    split_time = float(dataset.time[n_train - 1])
    train_sql = f"SELECT * FROM classroom WHERE time <= {split_time!r}"
    validation_rows = session.database.query_dicts(
        f"SELECT * FROM classroom WHERE time > {split_time!r}"
    )
    validation = MeasurementSet.from_rows(validation_rows)
    n_validation = len(validation.time)

    archive_path = session.catalog.storage_dir / "classroom_madlib.fmu"
    spec.builder().write(archive_path)
    session.create(str(archive_path), "ClassroomBase")
    calibration = session.estimator.estimate_single(
        "ClassroomBase", train_sql, spec.estimated_parameters
    )

    # Occupancy prediction with the MADlib-style ARIMA UDFs: the model is
    # trained on the stored occupancy series and its forecast over the
    # validation window stands in for the unknown occupancy.
    session.execute("SELECT arima_train('classroom', 'occ_model', 'time', 'occ', $1, $2, $3)",
                [int(arima_order[0]), int(arima_order[1]), int(arima_order[2])])
    forecast_rows = session.execute(
        "SELECT * FROM arima_forecast('occ_model', $1)", [n_validation]
    ).rows
    predicted_occupancy = np.clip(
        np.array([row[1] for row in forecast_rows], dtype=float), 0.0, None
    )

    measured_temperature = validation.series["t"]

    def simulate_with_occupancy(occupancy_values: np.ndarray) -> float:
        model = session.catalog.runtime_model("ClassroomBase")
        model.set_many(calibration.parameters)
        # Start from the measured room temperature at the beginning of the
        # validation window (otherwise the initial transient dominates).
        model.set("t", float(measured_temperature[0]))
        inputs = {
            name: (validation.time, validation.series[name])
            for name in ("solrad", "tout", "dpos", "vpos")
        }
        inputs["occ"] = (validation.time, occupancy_values)
        result = model.simulate(
            inputs=inputs,
            start_time=float(validation.time[0]),
            stop_time=float(validation.time[-1]),
            output_times=validation.time,
        )
        return float(rmse(measured_temperature, result["t"]))

    rmse_without = simulate_with_occupancy(np.zeros(n_validation))
    rmse_with = simulate_with_occupancy(predicted_occupancy)
    improvement = (rmse_without - rmse_with) / rmse_without * 100.0

    rows = [
        ["without occupancy information", round(rmse_without, 4)],
        ["with MADlib-ARIMA-predicted occupancy", round(rmse_with, 4)],
    ]
    return ExperimentResult(
        experiment_id="MADlib combo (a)",
        title="Classroom model RMSE with and without ARIMA-predicted occupancy",
        headers=["Configuration", "Validation RMSE [degC]"],
        rows=rows,
        meta={
            "rmse_improvement_percent": round(improvement, 2),
            "paper_reported": "up to 21.1% RMSE improvement",
            "calibrated_parameters": calibration.parameters,
        },
    )


def madlib_damper_experiment(hours: float = 168.0, seed: int = 6) -> ExperimentResult:
    """The FMU-simulated indoor temperature improves the damper classifier."""
    spec = get_model_spec("Classroom")
    session = PgFmu(seed=seed)
    dataset = generate_classroom_dataset(hours=hours, seed=seed + 20)
    load_dataset(session.database, dataset, table_name="classroom")

    archive_path = session.catalog.storage_dir / "classroom_damper.fmu"
    spec.true_builder().write(archive_path)
    session.create(str(archive_path), "ClassroomTrue")

    # Simulate the indoor temperature with pgFMU and store it as a feature.
    result = session.simulate("ClassroomTrue", "SELECT * FROM classroom")
    simulated_temperature = result["t"]

    session.execute(
        "CREATE TABLE damper_features (time double precision PRIMARY KEY, "
        "solrad double precision, tout double precision, occ double precision, "
        "t_fmu double precision, damper_open integer)"
    )
    # "Open" is defined relative to the median damper position so the two
    # classes are balanced and the classification task is non-trivial.
    threshold_open = float(np.median(dataset.series["dpos"]))
    rows = []
    for i, record in enumerate(dataset.to_dicts()):
        rows.append(
            [
                record["time"],
                record["solrad"],
                record["tout"],
                record["occ"],
                float(simulated_temperature[i]),
                1 if record["dpos"] > threshold_open else 0,
            ]
        )
    session.database.insert_rows("damper_features", rows)

    # Train/validation split: every fifth sample is held out.  An interleaved
    # split keeps the two sets distributionally comparable (a purely temporal
    # split would confound the comparison with the building's slow thermal
    # drift over the measurement campaign).
    session.execute("CREATE TABLE damper_train (time double precision, solrad double precision, "
                "tout double precision, occ double precision, t_fmu double precision, damper_open integer)")
    session.execute("CREATE TABLE damper_validation (time double precision, solrad double precision, "
                "tout double precision, occ double precision, t_fmu double precision, damper_open integer)")
    session.database.insert_rows(
        "damper_train", [row for i, row in enumerate(rows) if i % 5 != 4]
    )
    session.database.insert_rows(
        "damper_validation", [row for i, row in enumerate(rows) if i % 5 == 4]
    )

    base_accuracy = _train_and_score(session, "damper_base", "{solrad, tout, occ}")
    fmu_accuracy = _train_and_score(session, "damper_with_fmu", "{solrad, tout, occ, t_fmu}")
    improvement = (fmu_accuracy - base_accuracy) / base_accuracy * 100.0

    return ExperimentResult(
        experiment_id="MADlib combo (b)",
        title="Damper-position classifier accuracy with and without the FMU temperature feature",
        headers=["Feature set", "Validation accuracy"],
        rows=[
            ["solrad, tout, occ", round(base_accuracy, 4)],
            ["solrad, tout, occ, t_fmu", round(fmu_accuracy, 4)],
        ],
        meta={
            "accuracy_improvement_percent": round(improvement, 2),
            "paper_reported": "5.9% accuracy improvement",
        },
    )


def _train_and_score(session: PgFmu, model_table: str, features: str) -> float:
    session.execute(
        "SELECT logregr_train('damper_train', $1, 'damper_open', $2)",
        [model_table, features],
    )
    return float(
        session.execute(
            "SELECT logregr_accuracy($1, 'damper_validation', 'damper_open')",
            [model_table],
        ).scalar()
    )
