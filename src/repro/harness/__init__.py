"""Experiment harness: regenerate every table and figure of the paper.

Each ``table_*`` / ``figure_*`` / ``madlib_*`` function in
:mod:`repro.harness.experiments` runs the corresponding experiment against
the library and returns a structured result object that also knows how to
render itself as a text table (the same rows/series the paper reports).  The
benchmarks in ``benchmarks/`` and the examples call these functions, so
everything the paper's evaluation section shows can be reproduced with one
call per artefact.
"""

from repro.harness.experiments import (
    ExperimentResult,
    figure6_threshold_sweep,
    figure7_mi_scaling,
    figure8_usability,
    madlib_damper_experiment,
    madlib_occupancy_experiment,
    table1_code_lines,
    table2_feature_matrix,
    table3_variables_example,
    table4_simulate_example,
    table5_models,
    table6_dataset_excerpts,
    table7_si_quality,
    table8_si_time,
)
from repro.harness.reporting import format_table

__all__ = [
    "ExperimentResult",
    "format_table",
    "table1_code_lines",
    "table2_feature_matrix",
    "table3_variables_example",
    "table4_simulate_example",
    "table5_models",
    "table6_dataset_excerpts",
    "table7_si_quality",
    "table8_si_time",
    "figure6_threshold_sweep",
    "figure7_mi_scaling",
    "figure8_usability",
    "madlib_occupancy_experiment",
    "madlib_damper_experiment",
]
