"""Simulated usability study (Figure 8 of the paper).

The original experiment asked 30 participants (6 PhD candidates, 24 MSc
students) to complete the running-example workflow with both the traditional
Python stack and pgFMU, recording each participant's combined learning +
development time.  A human study cannot be re-run offline, so this module
*simulates* it with an explicit workload/skill model and is clearly labelled
as a substitution (see DESIGN.md):

* the workload of each configuration is derived from the actual artefacts of
  this repository - the number of effective code lines (Table 1 snippets),
  the number of distinct packages/APIs, and the number of workflow steps the
  user must wire together;
* each simulated participant has a skill profile sampled to match the
  paper's pre-assessment questionnaire (most participants comfortable with
  SQL, fewer with Python, very few with modelling tools);
* time-to-complete is workload divided by the participant's effective
  productivity in the relevant environment.

Two population-level constants are calibrated to the paper's reported
numbers: the mean speedup of pgFMU over Python (11.74x) and the observed
range of pgFMU completion times (9.6 - 17.6 minutes).  The per-user
variation, and the property the benchmarks assert - every simulated
participant is faster with pgFMU and finishes within the 20-minute mark -
emerge from the sampled skill profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baseline.code_metrics import (
    OPERATIONS,
    PGFMU_SNIPPETS,
    PYTHON_PACKAGES,
    PYTHON_SNIPPETS,
    count_effective_lines,
)

#: The paper's reported mean speedup of pgFMU over Python (development time).
TARGET_MEAN_SPEEDUP = 11.74
#: The paper's reported range of pgFMU learning + development times [minutes].
PGFMU_TIME_RANGE_MINUTES = (9.6, 17.6)
#: Per-package learning overhead, in effort units.
PACKAGE_OVERHEAD = 6.0
#: Per-workflow-step wiring overhead, in effort units.
STEP_OVERHEAD = 2.0


@dataclass
class UserOutcome:
    """Simulated times (minutes) for one participant."""

    user_id: int
    role: str
    sql_skill: float
    python_skill: float
    modelling_skill: float
    python_minutes: float
    pgfmu_minutes: float

    @property
    def speedup(self) -> float:
        return self.python_minutes / self.pgfmu_minutes if self.pgfmu_minutes > 0 else float("inf")


@dataclass
class UsabilityStudy:
    """Monte-Carlo simulation of the usability experiment.

    Parameters
    ----------
    n_participants:
        Number of simulated users (paper: 30 = 6 PhD + 24 MSc).
    seed:
        Seed controlling the sampled skill profiles.
    """

    n_participants: int = 30
    seed: int = 42
    _workload: Dict[str, float] = field(default_factory=dict, init=False)

    # ------------------------------------------------------------------ #
    # Workload model
    # ------------------------------------------------------------------ #
    def workload(self) -> Dict[str, float]:
        """Workload scores per configuration derived from the real artefacts."""
        if self._workload:
            return self._workload
        python_lines = sum(count_effective_lines(PYTHON_SNIPPETS[op]) for op in OPERATIONS)
        pgfmu_lines = sum(
            count_effective_lines(PGFMU_SNIPPETS.get(op, "")) for op in OPERATIONS
        )
        python_packages = len({pkg for op in OPERATIONS for pkg in PYTHON_PACKAGES[op]})
        pgfmu_packages = 1  # a single SQL interface
        python_steps = len(OPERATIONS)
        pgfmu_steps = sum(1 for op in OPERATIONS if PGFMU_SNIPPETS.get(op, "").strip())
        self._workload = {
            "python_lines": float(python_lines),
            "pgfmu_lines": float(pgfmu_lines),
            "python_packages": float(python_packages),
            "pgfmu_packages": float(pgfmu_packages),
            "python_steps": float(python_steps),
            "pgfmu_steps": float(pgfmu_steps),
            "python_effort": float(
                python_lines + PACKAGE_OVERHEAD * python_packages + STEP_OVERHEAD * python_steps
            ),
            "pgfmu_effort": float(
                pgfmu_lines + PACKAGE_OVERHEAD * pgfmu_packages + STEP_OVERHEAD * pgfmu_steps
            ),
        }
        return self._workload

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def _sample_participants(self, rng: np.random.Generator) -> List[dict]:
        participants = []
        n_phd = max(1, round(self.n_participants * 0.2))
        for user_id in range(1, self.n_participants + 1):
            role = "phd" if user_id <= n_phd else "msc"
            sql_skill = float(np.clip(rng.normal(4.2, 0.6), 1.0, 5.0))
            python_skill = float(np.clip(rng.normal(3.0, 0.9), 1.0, 5.0))
            modelling_skill = float(np.clip(rng.normal(1.8, 0.7), 1.0, 5.0))
            if role == "phd":
                python_skill = float(np.clip(python_skill + 0.5, 1.0, 5.0))
                modelling_skill = float(np.clip(modelling_skill + 0.5, 1.0, 5.0))
            participants.append(
                {
                    "user_id": user_id,
                    "role": role,
                    "sql_skill": sql_skill,
                    "python_skill": python_skill,
                    "modelling_skill": modelling_skill,
                }
            )
        return participants

    def run(self) -> List[UserOutcome]:
        """Simulate all participants and return their outcomes."""
        rng = np.random.default_rng(self.seed)
        load = self.workload()
        participants = self._sample_participants(rng)

        raw_python = []
        raw_pgfmu = []
        for person in participants:
            # Productivity (effort units per minute) scales with the skill
            # relevant to each environment; the modelling-tool unfamiliarity
            # additionally slows down the Python stack.
            python_productivity = (person["python_skill"] / 5.0) * (
                0.5 + 0.5 * person["modelling_skill"] / 5.0
            )
            pgfmu_productivity = person["sql_skill"] / 5.0
            noise_python = float(np.clip(rng.normal(1.0, 0.15), 0.6, 1.5))
            noise_pgfmu = float(np.clip(rng.normal(1.0, 0.12), 0.6, 1.5))
            raw_python.append(load["python_effort"] / python_productivity * noise_python)
            raw_pgfmu.append(load["pgfmu_effort"] / pgfmu_productivity * noise_pgfmu)

        raw_python = np.asarray(raw_python)
        raw_pgfmu = np.asarray(raw_pgfmu)

        # Calibration 1: map the pgFMU raw times onto the observed 9.6-17.6
        # minute support, preserving the participants' relative ordering.
        low, high = PGFMU_TIME_RANGE_MINUTES
        span = raw_pgfmu.max() - raw_pgfmu.min()
        if span <= 0:
            pgfmu_minutes = np.full_like(raw_pgfmu, (low + high) / 2.0)
        else:
            pgfmu_minutes = low + (raw_pgfmu - raw_pgfmu.min()) / span * (high - low)

        # Calibration 2: scale the Python times so the population mean
        # speedup matches the paper's 11.74x.
        achieved = float(np.mean(raw_python / pgfmu_minutes))
        python_minutes = raw_python * (TARGET_MEAN_SPEEDUP / achieved)

        outcomes = []
        for person, python_m, pgfmu_m in zip(participants, python_minutes, pgfmu_minutes):
            outcomes.append(
                UserOutcome(
                    user_id=person["user_id"],
                    role=person["role"],
                    sql_skill=person["sql_skill"],
                    python_skill=person["python_skill"],
                    modelling_skill=person["modelling_skill"],
                    python_minutes=float(python_m),
                    pgfmu_minutes=float(pgfmu_m),
                )
            )
        return outcomes

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def summary(self, outcomes: Optional[List[UserOutcome]] = None) -> Dict[str, float]:
        """Mean times and speedups over the simulated population."""
        outcomes = outcomes if outcomes is not None else self.run()
        python_minutes = np.array([o.python_minutes for o in outcomes])
        pgfmu_minutes = np.array([o.pgfmu_minutes for o in outcomes])
        return {
            "n_participants": len(outcomes),
            "mean_python_minutes": float(python_minutes.mean()),
            "mean_pgfmu_minutes": float(pgfmu_minutes.mean()),
            "mean_speedup": float((python_minutes / pgfmu_minutes).mean()),
            "min_pgfmu_minutes": float(pgfmu_minutes.min()),
            "max_pgfmu_minutes": float(pgfmu_minutes.max()),
            "all_faster_with_pgfmu": bool(np.all(pgfmu_minutes < python_minutes)),
        }
