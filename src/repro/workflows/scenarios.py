"""Single-instance (SI) and multi-instance (MI) scenario runners.

These functions reproduce the experimental setup of Section 8.1:

* three configurations - ``Python`` (the traditional stack),
  ``pgFMU-`` (pgFMU without the MI optimization) and ``pgFMU+`` (with it);
* the SI scenario calibrates, validates and simulates a single instance of a
  model and reports per-step timings (Table 8) and calibration quality
  (Table 7);
* the MI scenario repeats the store/calibrate/simulate/validate workflow for
  ``n_instances`` instances of the same model, each bound to a synthetic
  dataset obtained by delta-scaling the original one (Figure 7).

The scenario settings expose the calibration budget so benchmarks can scale
the experiments down (the paper's full-size runs take ~14 minutes per
calibration on the original hardware); the *relative* behaviour - which
configuration wins and by roughly which factor - is preserved at any budget
because it is driven by how many global searches each configuration runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baseline.workflow import PythonWorkflow, WorkflowResult
from repro.core.session import PgFmu
from repro.data.generators import generate_dataset_for
from repro.data.loaders import load_dataset
from repro.data.synthetic import synthetic_family
from repro.errors import ReproError
from repro.estimation.metrics import rmse
from repro.estimation.objective import MeasurementSet
from repro.models.registry import get_model_spec
from repro.sqldb.database import Database
from repro.workflows.pgfmu_workflow import PgFmuWorkflow

#: Default calibration budget used by the scenario runners.  Chosen so a
#: single calibration takes on the order of a second on a laptop while still
#: running a genuine global + local search.
DEFAULT_GA_OPTIONS = {"population_size": 16, "generations": 10}
DEFAULT_LOCAL_OPTIONS = {"max_iterations": 40}


@dataclass
class ScenarioSettings:
    """Settings shared by the SI and MI scenario runners."""

    model_name: str = "HP1"
    hours: Optional[float] = 168.0
    n_instances: int = 5
    seed: int = 1
    threshold: float = 0.2
    training_fraction: float = 0.75
    ga_options: Dict = field(default_factory=lambda: dict(DEFAULT_GA_OPTIONS))
    local_options: Dict = field(default_factory=lambda: dict(DEFAULT_LOCAL_OPTIONS))

    def spec(self):
        return get_model_spec(self.model_name)


@dataclass
class SiScenarioResult:
    """Per-configuration results of the single-instance scenario."""

    model_name: str
    python: WorkflowResult
    pgfmu_minus: WorkflowResult
    pgfmu_plus: WorkflowResult
    true_parameters: Dict[str, float]

    def results(self) -> Dict[str, WorkflowResult]:
        return {
            "python": self.python,
            "pgfmu-": self.pgfmu_minus,
            "pgfmu+": self.pgfmu_plus,
        }


@dataclass
class MiScenarioResult:
    """Per-configuration results of the multi-instance scenario."""

    model_name: str
    n_instances: int
    total_seconds: Dict[str, float]
    errors: Dict[str, List[float]]
    mi_hits: int = 0

    @property
    def speedup_over_python(self) -> float:
        """How many times faster pgFMU+ is than the Python configuration."""
        python_time = self.total_seconds.get("python", 0.0)
        plus_time = self.total_seconds.get("pgfmu+", 0.0)
        if plus_time <= 0:
            return float("inf")
        return python_time / plus_time

    @property
    def average_errors(self) -> Dict[str, float]:
        return {
            config: float(np.mean(values)) if values else float("nan")
            for config, values in self.errors.items()
        }


# --------------------------------------------------------------------------- #
# SI scenario
# --------------------------------------------------------------------------- #
def run_si_scenario(settings: Optional[ScenarioSettings] = None) -> SiScenarioResult:
    """Run the single-instance scenario for one model in all three configurations."""
    settings = settings or ScenarioSettings()
    spec = settings.spec()
    dataset = generate_dataset_for(spec.name, hours=settings.hours, seed=settings.seed + 100)

    # Python configuration: its own database with the measurements loaded.
    python_db = Database()
    table = load_dataset(python_db, dataset, table_name="measurements")
    python_workflow = PythonWorkflow(
        database=python_db,
        archive=spec.builder(),
        measurements_table=table,
        parameters=spec.estimated_parameters,
        training_fraction=settings.training_fraction,
        ga_options=settings.ga_options,
        local_options=settings.local_options,
        seed=settings.seed,
    )
    python_result = python_workflow.run()

    # pgFMU- and pgFMU+ configurations.
    pgfmu_results = {}
    for use_mi, label in ((False, "pgfmu-"), (True, "pgfmu+")):
        session = PgFmu(
            ga_options=settings.ga_options,
            local_options=settings.local_options,
            seed=settings.seed,
        )
        load_dataset(session.database, dataset, table_name="measurements")
        workflow = PgFmuWorkflow(
            session=session,
            archive=spec.builder(),
            measurements_table="measurements",
            parameters=spec.estimated_parameters,
            instance_id=f"{spec.name}Instance1",
            training_fraction=settings.training_fraction,
            use_mi_optimization=use_mi,
            observed=spec.observed[0],
            threshold=settings.threshold,
        )
        pgfmu_results[label] = workflow.run()

    return SiScenarioResult(
        model_name=spec.name,
        python=python_result,
        pgfmu_minus=pgfmu_results["pgfmu-"],
        pgfmu_plus=pgfmu_results["pgfmu+"],
        true_parameters=dict(spec.true_parameters),
    )


# --------------------------------------------------------------------------- #
# MI scenario
# --------------------------------------------------------------------------- #
def run_mi_scenario(settings: Optional[ScenarioSettings] = None) -> MiScenarioResult:
    """Run the multi-instance scenario in all three configurations.

    Each instance is bound to a delta-scaled synthetic dataset, as in the
    paper.  The Python and pgFMU- configurations run the full global+local
    calibration for every instance; pgFMU+ applies the MI optimization and
    runs the global stage only for the first instance (and for any instance
    whose measurements are too dissimilar).
    """
    settings = settings or ScenarioSettings()
    spec = settings.spec()
    if settings.n_instances < 1:
        raise ReproError("n_instances must be at least 1")
    base_dataset = generate_dataset_for(spec.name, hours=settings.hours, seed=settings.seed + 100)
    family = synthetic_family(base_dataset, settings.n_instances, seed=settings.seed + 200)
    observed = spec.observed[0]

    total_seconds: Dict[str, float] = {}
    errors: Dict[str, List[float]] = {}

    # ---------------- Python configuration ---------------- #
    python_db = Database()
    tables = [
        load_dataset(python_db, member, table_name=f"measurements_{i + 1}")
        for i, member in enumerate(family)
    ]
    started = time.perf_counter()
    python_errors = []
    for i, table in enumerate(tables):
        workflow = PythonWorkflow(
            database=python_db,
            archive=spec.builder(),
            measurements_table=table,
            parameters=spec.estimated_parameters,
            training_fraction=settings.training_fraction,
            ga_options=settings.ga_options,
            local_options=settings.local_options,
            seed=settings.seed,
            predictions_table=f"predictions_python_{i + 1}",
        )
        python_errors.append(workflow.run().training_error)
    total_seconds["python"] = time.perf_counter() - started
    errors["python"] = python_errors

    # ---------------- pgFMU- and pgFMU+ ---------------- #
    mi_hits = 0
    for use_mi, label in ((False, "pgfmu-"), (True, "pgfmu+")):
        session = PgFmu(
            ga_options=settings.ga_options,
            local_options=settings.local_options,
            seed=settings.seed,
        )
        member_tables = [
            load_dataset(session.database, member, table_name=f"measurements_{i + 1}")
            for i, member in enumerate(family)
        ]
        archive_path = session.catalog.storage_dir / f"{spec.name}_mi.fmu"
        spec.builder().write(archive_path)

        started = time.perf_counter()
        instance_ids = []
        for i in range(settings.n_instances):
            instance_id = f"{spec.name}Instance{i + 1}"
            if i == 0:
                session.create(str(archive_path), instance_id)
            else:
                session.instance(f"{spec.name}Instance1").copy(instance_id)
            instance_ids.append(instance_id)
        input_sqls = [f"SELECT * FROM {table}" for table in member_tables]
        outcomes = session.parest(
            instance_ids,
            input_sqls,
            parameters=spec.estimated_parameters,
            threshold=settings.threshold,
            use_mi_optimization=use_mi,
        )
        # Simulate every instance (part of the timed workflow, as in the paper)
        # and record the calibration error, which is the quality figure the
        # paper's MI comparison reports.
        config_errors = [outcome.error for outcome in outcomes]
        for instance_id, table in zip(instance_ids, member_tables):
            session.simulate(instance_id, f"SELECT * FROM {table}")
        total_seconds[label] = time.perf_counter() - started
        errors[label] = config_errors
        if use_mi:
            mi_hits = sum(1 for outcome in outcomes if outcome.used_mi_optimization)

    return MiScenarioResult(
        model_name=spec.name,
        n_instances=settings.n_instances,
        total_seconds=total_seconds,
        errors=errors,
        mi_hits=mi_hits,
    )
