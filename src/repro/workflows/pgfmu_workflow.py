"""The running-example workflow executed through pgFMU.

This mirrors :class:`repro.baseline.workflow.PythonWorkflow` step by step so
the per-step timings are directly comparable (Table 8), but every step is a
single SQL statement against the pgFMU session: measurements are never
exported, predictions are produced and analyzed in place, and validation and
model update happen inside ``fmu_parest``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.baseline.workflow import StepTiming, WorkflowResult
from repro.core.session import PgFmu
from repro.errors import ReproError
from repro.estimation.objective import MeasurementSet
from repro.estimation.metrics import rmse
from repro.fmi.archive import FmuArchive

import numpy as np


class PgFmuWorkflow:
    """The seven-step workflow expressed as pgFMU SQL calls.

    Parameters
    ----------
    session:
        The pgFMU session (owning the database with the measurements table).
    archive:
        The FMU archive to register (written to FMU storage on first use).
    measurements_table:
        Name of the measurements table inside the session's database.
    parameters:
        Parameters to estimate.
    instance_id:
        Identifier for the catalogue instance created by the workflow.
    training_fraction:
        Calibration/validation split, as in the baseline.
    use_mi_optimization:
        Whether ``fmu_parest`` may apply the MI optimization; the pgFMU-
        configuration of the paper disables it.
    observed:
        Name of the measured series used for validation RMSE.
    """

    def __init__(
        self,
        session: PgFmu,
        archive: FmuArchive,
        measurements_table: str,
        parameters: Sequence[str],
        instance_id: str,
        training_fraction: float = 0.75,
        use_mi_optimization: bool = True,
        observed: str = "x",
        warm_start_from: Optional[Dict[str, float]] = None,
        threshold: float = 0.2,
    ):
        self.session = session
        self.archive = archive
        self.measurements_table = measurements_table
        self.parameters = list(parameters)
        self.instance_id = instance_id
        self.training_fraction = float(training_fraction)
        self.use_mi_optimization = use_mi_optimization
        self.observed = observed
        self.warm_start_from = warm_start_from
        self.threshold = threshold

    # ------------------------------------------------------------------ #
    # Workflow
    # ------------------------------------------------------------------ #
    def run(self) -> WorkflowResult:
        """Execute the workflow and return per-step timings."""
        steps: List[StepTiming] = []
        database = self.session.database

        # Step 1: load/build the FMU model (fmu_create on a stored archive).
        started = time.perf_counter()
        fmu_path = self.session.catalog.storage_dir / f"workflow_{self.archive.model_name}.fmu"
        if not Path(fmu_path).exists():
            self.archive.write(fmu_path)
        instance = self.session.create(str(fmu_path), self.instance_id)
        steps.append(StepTiming("load_fmu", time.perf_counter() - started))

        # Step 2: read measurements - nothing to do, the data is already in
        # the DBMS; we only determine the training window boundary.
        started = time.perf_counter()
        bounds = database.execute(
            f"SELECT min(time) AS t0, max(time) AS t1, count(*) AS n FROM {self.measurements_table}"
        ).first()
        if not bounds or bounds["n"] == 0:
            raise ReproError(f"measurements table {self.measurements_table!r} is empty")
        split_time = bounds["t0"] + self.training_fraction * (bounds["t1"] - bounds["t0"])
        steps.append(StepTiming("read_measurements", time.perf_counter() - started))

        # Step 3: recalibrate with fmu_parest on the training window.
        started = time.perf_counter()
        training_sql = (
            f"SELECT * FROM {self.measurements_table} WHERE time <= {split_time!r}"
        )
        outcomes = self.session.estimator.estimate(
            [self.instance_id],
            [training_sql],
            parameters=self.parameters,
            threshold=self.threshold,
            use_mi_optimization=self.use_mi_optimization,
        ) if self.warm_start_from is None else [
            self._warm_started_estimate(training_sql)
        ]
        calibration = outcomes[0]
        steps.append(StepTiming("recalibrate", time.perf_counter() - started))

        # Step 4: validate on the held-out window (a simulation + RMSE, all
        # computed from in-DBMS data).
        started = time.perf_counter()
        validation_sql = (
            f"SELECT * FROM {self.measurements_table} WHERE time >= {split_time!r}"
        )
        validation_error = self._validation_rmse(validation_sql, calibration.parameters)
        steps.append(StepTiming("validate_update", time.perf_counter() - started))

        # Step 5: simulate the calibrated model over the full window.
        started = time.perf_counter()
        simulation_rows = instance.simulate_rows(
            f"SELECT * FROM {self.measurements_table}"
        )
        steps.append(StepTiming("simulate", time.perf_counter() - started))

        # Step 6: export predictions - not needed, results are already rows.
        started = time.perf_counter()
        steps.append(StepTiming("export_predictions", time.perf_counter() - started))

        # Step 7: further analysis with plain SQL over fmu_simulate.
        started = time.perf_counter()
        database.execute(
            "SELECT varname, avg(value) AS mean_value, min(value) AS min_value, "
            "max(value) AS max_value "
            f"FROM fmu_simulate('{self.instance_id}', "
            f"'SELECT * FROM {self.measurements_table}') GROUP BY varname"
        )
        steps.append(StepTiming("further_analysis", time.perf_counter() - started))

        configuration = "pgfmu+" if self.use_mi_optimization else "pgfmu-"
        return WorkflowResult(
            configuration=configuration,
            model_name=self.archive.model_name,
            parameters=dict(calibration.parameters),
            training_error=calibration.error,
            validation_error=validation_error,
            steps=steps,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _warm_started_estimate(self, training_sql: str):
        """MI-optimized calibration warm-started from a reference optimum."""
        return self.session.estimator.estimate_single(
            self.instance_id,
            training_sql,
            parameters=self.parameters,
            method="local",
            initial_values=self.warm_start_from,
        )

    def _validation_rmse(
        self, validation_sql: str, parameters: Dict[str, float]
    ) -> Optional[float]:
        rows = self.session.database.query_dicts(validation_sql)
        if len(rows) < 2:
            return None
        measurements = MeasurementSet.from_rows(rows)
        if self.observed not in measurements.series:
            return None
        from repro.estimation.objective import SimulationObjective

        model = self.session.catalog.runtime_model(self.instance_id)
        objective = SimulationObjective(
            model=model,
            measurements=measurements,
            parameter_names=list(parameters),
            observed_names=[self.observed],
        )
        return float(objective.error_for(parameters))
