"""High-level workflow runners for the paper's experimental scenarios.

* :mod:`repro.workflows.pgfmu_workflow` - the running-example workflow
  executed through pgFMU (the in-DBMS counterpart of the traditional
  baseline), with per-step timing.
* :mod:`repro.workflows.scenarios` - the single-instance (SI) and
  multi-instance (MI) scenario runners that compare the three configurations
  of Section 8: ``Python``, ``pgFMU-`` (no MI optimization) and ``pgFMU+``
  (with MI optimization).
* :mod:`repro.workflows.usability` - the simulated usability study behind
  Figure 8 (documented substitution for the human-participant study).
"""

from repro.workflows.pgfmu_workflow import PgFmuWorkflow
from repro.workflows.scenarios import (
    MiScenarioResult,
    ScenarioSettings,
    SiScenarioResult,
    run_mi_scenario,
    run_si_scenario,
)
from repro.workflows.usability import UsabilityStudy, UserOutcome

__all__ = [
    "PgFmuWorkflow",
    "ScenarioSettings",
    "SiScenarioResult",
    "MiScenarioResult",
    "run_si_scenario",
    "run_mi_scenario",
    "UsabilityStudy",
    "UserOutcome",
]
