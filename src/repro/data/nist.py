"""Synthetic equivalents of the NIST heat-pump measurement dataset.

The paper calibrates HP0 and HP1 on hourly-aggregated data from the NIST
Net-Zero Energy Residential Test Facility, February 1-21, validating on
February 22-28 (672 hourly samples overall).  The substitute datasets here
are produced by simulating the ground-truth heat pump model (Table 7
parameter values) under a thermostat-like power-rating profile and adding a
small Gaussian measurement noise, so the measured columns are::

    time [h] | x (indoor temperature) | y (HP power consumption) | u (rating)

HP0 uses the same layout with ``u`` frozen at the constant 1.38 % rate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.fmi.model import load_fmu
from repro.models.heatpump import (
    HP0_CONSTANT_RATING,
    HP0_TRUE_PARAMETERS,
    HP1_TRUE_PARAMETERS,
    HP_RATED_POWER,
    build_hp0_archive,
    build_hp1_archive,
)

#: Calibration period of the paper: Feb 1-21 (hours 0..503), validation Feb 22-28.
TRAINING_HOURS = 21 * 24
TOTAL_HOURS = 28 * 24
#: Standard deviation of the synthetic measurement noise on temperatures [degC].
TEMPERATURE_NOISE_STD = 0.05


def _thermostat_profile(time: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A realistic heat pump power-rating profile in [0, 1].

    The profile combines a diurnal heating schedule (more heating at night
    when it is colder and in the morning), a weekly modulation, and a small
    random dither, then clips to the valid range.  It is deliberately
    persistent (smooth) so the indoor temperature dynamics are informative
    for calibration.
    """
    hours_of_day = np.mod(time, 24.0)
    diurnal = 0.45 + 0.25 * np.cos(2.0 * np.pi * (hours_of_day - 3.0) / 24.0)
    weekly = 0.05 * np.sin(2.0 * np.pi * time / (24.0 * 7.0))
    dither = rng.normal(0.0, 0.04, size=time.shape)
    smooth_dither = np.convolve(dither, np.ones(5) / 5.0, mode="same")
    return np.clip(diurnal + weekly + smooth_dither, 0.0, 1.0)


def generate_hp1_dataset(
    hours: int = TOTAL_HOURS,
    seed: int = 11,
    noise_std: float = TEMPERATURE_NOISE_STD,
    true_parameters: Optional[dict] = None,
) -> Dataset:
    """Generate the HP1 measurement dataset (hourly samples).

    Parameters
    ----------
    hours:
        Number of hourly samples (default: the paper's four February weeks).
    seed:
        Seed controlling both the rating profile and the measurement noise.
    noise_std:
        Standard deviation of the additive temperature measurement noise.
    true_parameters:
        Ground-truth ``Cp``/``R`` values; defaults to the Table 7 values.
    """
    rng = np.random.default_rng(seed)
    time = np.arange(0.0, float(hours), 1.0)
    rating = _thermostat_profile(time, rng)

    archive = build_hp1_archive(true_parameters=true_parameters or HP1_TRUE_PARAMETERS)
    model = load_fmu(archive)
    result = model.simulate(
        inputs={"u": (time, rating)},
        start_time=float(time[0]),
        stop_time=float(time[-1]),
        output_times=time,
    )

    temperature = result["x"] + rng.normal(0.0, noise_std, size=time.shape)
    power = HP_RATED_POWER * rating
    return Dataset(
        name="hp1_measurements",
        time=time,
        series={"x": temperature, "y": power, "u": rating},
        meta={
            "model": "HP1",
            "true_parameters": dict(true_parameters or HP1_TRUE_PARAMETERS),
            "seed": seed,
            "noise_std": noise_std,
            "training_hours": min(TRAINING_HOURS, hours),
        },
    )


def generate_hp0_dataset(
    hours: int = TOTAL_HOURS,
    seed: int = 10,
    noise_std: float = TEMPERATURE_NOISE_STD,
    true_parameters: Optional[dict] = None,
) -> Dataset:
    """Generate the HP0 measurement dataset (constant 1.38 % rating)."""
    rng = np.random.default_rng(seed)
    time = np.arange(0.0, float(hours), 1.0)

    archive = build_hp0_archive(true_parameters=true_parameters or HP0_TRUE_PARAMETERS)
    model = load_fmu(archive)
    result = model.simulate(
        start_time=float(time[0]),
        stop_time=float(time[-1]),
        output_times=time,
    )

    temperature = result["x"] + rng.normal(0.0, noise_std, size=time.shape)
    power = np.full(time.shape, HP_RATED_POWER * HP0_CONSTANT_RATING)
    return Dataset(
        name="hp0_measurements",
        time=time,
        series={"x": temperature, "y": power},
        meta={
            "model": "HP0",
            "true_parameters": dict(true_parameters or HP0_TRUE_PARAMETERS),
            "seed": seed,
            "noise_std": noise_std,
            "training_hours": min(TRAINING_HOURS, hours),
        },
    )
