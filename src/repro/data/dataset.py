"""The :class:`Dataset` container shared by generators, loaders and workflows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.estimation.objective import MeasurementSet


@dataclass
class Dataset:
    """A measurement dataset: a shared time grid plus named series.

    Attributes
    ----------
    name:
        Dataset identifier, also used to derive SQL table names.
    time:
        Time grid in hours from the start of the measurement campaign.
    series:
        Mapping of column name to values on ``time``.
    meta:
        Free-form metadata (true parameters, generator seed, ...).
    """

    name: str
    time: np.ndarray
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.time = np.asarray(self.time, dtype=float)
        if self.time.ndim != 1 or self.time.size < 2:
            raise ReproError("a dataset needs a 1-D time grid with at least 2 points")
        clean: Dict[str, np.ndarray] = {}
        for column, values in self.series.items():
            arr = np.asarray(values, dtype=float)
            if arr.shape != self.time.shape:
                raise ReproError(
                    f"dataset {self.name!r}: series {column!r} has length {arr.shape[0]}, "
                    f"expected {self.time.shape[0]}"
                )
            clean[column] = arr
        self.series = clean

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> List[str]:
        """Series names (excluding time)."""
        return list(self.series)

    def __len__(self) -> int:
        return int(self.time.size)

    def __getitem__(self, column: str) -> np.ndarray:
        try:
            return self.series[column]
        except KeyError:
            raise ReproError(
                f"dataset {self.name!r} has no column {column!r}; columns: {self.columns}"
            ) from None

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def rows(self) -> Iterator[List[float]]:
        """Yield positional rows ``[time, col1, col2, ...]`` in column order."""
        columns = self.columns
        for i in range(len(self)):
            yield [float(self.time[i])] + [float(self.series[c][i]) for c in columns]

    def to_dicts(self) -> List[Dict[str, float]]:
        """Rows as dictionaries including the ``time`` key."""
        columns = self.columns
        return [
            {"time": float(self.time[i]), **{c: float(self.series[c][i]) for c in columns}}
            for i in range(len(self))
        ]

    def to_measurement_set(self) -> MeasurementSet:
        """Convert to the calibration :class:`MeasurementSet` form."""
        return MeasurementSet(time=self.time.copy(), series={k: v.copy() for k, v in self.series.items()})

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #
    def window(self, start: float, stop: float) -> "Dataset":
        """Restrict the dataset to ``start <= time <= stop``."""
        mask = (self.time >= start) & (self.time <= stop)
        if mask.sum() < 2:
            raise ReproError("dataset window contains fewer than 2 samples")
        return Dataset(
            name=self.name,
            time=self.time[mask],
            series={k: v[mask] for k, v in self.series.items()},
            meta=dict(self.meta),
        )

    def with_series(self, extra: Mapping[str, Sequence[float]]) -> "Dataset":
        """A copy with additional (or replaced) series."""
        series = {k: v.copy() for k, v in self.series.items()}
        for name, values in extra.items():
            series[name] = np.asarray(values, dtype=float)
        return Dataset(name=self.name, time=self.time.copy(), series=series, meta=dict(self.meta))

    def rename(self, name: str) -> "Dataset":
        """A copy with a new dataset name."""
        return Dataset(
            name=name,
            time=self.time.copy(),
            series={k: v.copy() for k, v in self.series.items()},
            meta=dict(self.meta),
        )
