"""Synthetic equivalent of the SDU Odense classroom measurement dataset.

The paper's Classroom model is calibrated on half-hourly measurements from a
classroom in building O44 at SDU Campus Odense (Table 6 shows the columns:
indoor temperature ``t``, solar radiation ``solrad``, outdoor temperature
``tout``, occupancy ``occ``, damper position ``dpos``, radiator valve
position ``vpos``).  The substitute generator builds two weeks of half-hourly
input profiles (a spring solar curve, a diurnal outdoor temperature, a
lecture-schedule occupancy pattern, and rule-based damper/valve actuation)
and simulates the ground-truth Classroom model to obtain ``t``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.fmi.model import load_fmu
from repro.models.classroom import CLASSROOM_TRUE_PARAMETERS, build_classroom_archive

#: Half-hourly sampling over two weeks.
SAMPLE_HOURS = 0.5
TOTAL_HOURS = 14 * 24
#: Temperature measurement noise [degC].
TEMPERATURE_NOISE_STD = 0.05


def _solar_radiation(time: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Spring solar radiation in W/m2: a clipped sine over daylight hours."""
    hours_of_day = np.mod(time, 24.0)
    clear_sky = 650.0 * np.clip(np.sin(np.pi * (hours_of_day - 6.0) / 13.0), 0.0, None)
    cloudiness = 0.6 + 0.4 * np.clip(np.sin(2.0 * np.pi * time / (24.0 * 3.5) + 1.0), 0.0, 1.0)
    noise = np.clip(1.0 + rng.normal(0.0, 0.08, size=time.shape), 0.5, 1.5)
    return clear_sky * cloudiness * noise


def _outdoor_temperature(time: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Diurnal April outdoor temperature around 8-14 degC."""
    hours_of_day = np.mod(time, 24.0)
    diurnal = 11.0 + 3.5 * np.sin(2.0 * np.pi * (hours_of_day - 9.0) / 24.0)
    trend = 1.0 * np.sin(2.0 * np.pi * time / (24.0 * 7.0))
    noise = rng.normal(0.0, 0.3, size=time.shape)
    return diurnal + trend + np.convolve(noise, np.ones(4) / 4.0, mode="same")


def _occupancy(time: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Lecture-schedule occupancy: 0 outside teaching hours, 15-30 during lectures."""
    occupancy = np.zeros_like(time)
    hours_of_day = np.mod(time, 24.0)
    day_index = (time // 24.0).astype(int)
    for i, (hour, day) in enumerate(zip(hours_of_day, day_index)):
        weekday = day % 7
        if weekday >= 5:  # weekend
            continue
        in_morning_block = 8.0 <= hour < 12.0
        in_afternoon_block = 13.0 <= hour < 16.0
        if in_morning_block or in_afternoon_block:
            base = 22.0 if in_morning_block else 18.0
            occupancy[i] = max(0.0, base + rng.normal(0.0, 3.0))
    return occupancy


def _damper_position(
    occupancy: np.ndarray,
    rng: np.random.Generator,
    indoor_temperature: np.ndarray = None,
) -> np.ndarray:
    """Ventilation damper: demand-controlled by occupancy and room temperature.

    The second-pass rule (once an indoor temperature trajectory is available)
    also opens the damper when the room runs warm, which is what makes the
    FMU-simulated temperature a genuinely informative feature for the
    damper-position classifier in the MADlib-combination experiment.
    """
    base = np.clip(occupancy * 0.3, 0.0, 8.0)
    if indoor_temperature is not None:
        base = base + np.clip((indoor_temperature - 21.0) * 14.0, 0.0, 70.0)
    return np.clip(base + rng.normal(0.0, 3.0, size=occupancy.shape), 0.0, 100.0)


def _valve_position(outdoor: np.ndarray, time: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Radiator valve opens when it is cold outside, mostly during the day.

    The schedule is tuned so the classroom equilibrates slightly above 20 degC
    at night and reaches 22-24 degC on occupied, sunny afternoons - the
    operating range the damper demand-control rule reacts to.
    """
    hours_of_day = np.mod(time, 24.0)
    schedule = np.where((hours_of_day >= 6.0) & (hours_of_day <= 18.0), 1.0, 0.45)
    demand = (20.0 + np.clip((18.0 - outdoor) * 9.0, 0.0, 70.0)) * schedule
    return np.clip(demand + rng.normal(0.0, 2.0, size=outdoor.shape), 0.0, 100.0)


def generate_classroom_dataset(
    hours: float = TOTAL_HOURS,
    seed: int = 12,
    noise_std: float = TEMPERATURE_NOISE_STD,
    true_parameters: Optional[dict] = None,
) -> Dataset:
    """Generate the Classroom measurement dataset (half-hourly samples).

    The damper position is generated with a two-pass scheme: a first
    simulation with an occupancy-only damper rule provides an indoor
    temperature trajectory, the damper rule is then refined to also react to
    that temperature, and a second simulation with the final actuation
    produces the measured indoor temperature.
    """
    rng = np.random.default_rng(seed)
    time = np.arange(0.0, float(hours), SAMPLE_HOURS)

    solrad = _solar_radiation(time, rng)
    tout = _outdoor_temperature(time, rng)
    occ = _occupancy(time, rng)
    vpos = _valve_position(tout, time, rng)

    archive = build_classroom_archive(
        true_parameters=true_parameters or CLASSROOM_TRUE_PARAMETERS
    )
    model = load_fmu(archive)

    def run_simulation(damper: np.ndarray):
        return model.simulate(
            inputs={
                "solrad": (time, solrad),
                "tout": (time, tout),
                "occ": (time, occ),
                "dpos": (time, damper),
                "vpos": (time, vpos),
            },
            start_time=float(time[0]),
            stop_time=float(time[-1]),
            output_times=time,
        )

    first_pass = run_simulation(_damper_position(occ, rng))
    dpos = _damper_position(occ, rng, indoor_temperature=first_pass["t"])
    result = run_simulation(dpos)

    temperature = result["t"] + rng.normal(0.0, noise_std, size=time.shape)
    return Dataset(
        name="classroom_measurements",
        time=time,
        series={
            "t": temperature,
            "solrad": solrad,
            "tout": tout,
            "occ": occ,
            "dpos": dpos,
            "vpos": vpos,
        },
        meta={
            "model": "Classroom",
            "true_parameters": dict(true_parameters or CLASSROOM_TRUE_PARAMETERS),
            "seed": seed,
            "noise_std": noise_std,
            "training_hours": float(hours) * 0.8,
        },
    )
