"""Model-name-keyed dataset generation used by the experiment harness."""

from __future__ import annotations

from typing import Optional

from repro.data.classroom import generate_classroom_dataset
from repro.data.dataset import Dataset
from repro.data.nist import generate_hp0_dataset, generate_hp1_dataset
from repro.errors import ReproError


def generate_dataset_for(model_name: str, hours: Optional[float] = None, seed: Optional[int] = None) -> Dataset:
    """Generate the measurement dataset matching one of the paper's models.

    Parameters
    ----------
    model_name:
        ``"HP0"``, ``"HP1"`` or ``"Classroom"`` (case-insensitive).
    hours:
        Optional length of the measurement campaign; defaults to the paper's
        campaign lengths (28 days hourly for the heat pumps, 14 days
        half-hourly for the classroom).
    seed:
        Optional generator seed override.
    """
    name = model_name.lower()
    if name == "hp0":
        kwargs = {}
        if hours is not None:
            kwargs["hours"] = int(hours)
        if seed is not None:
            kwargs["seed"] = seed
        return generate_hp0_dataset(**kwargs)
    if name == "hp1":
        kwargs = {}
        if hours is not None:
            kwargs["hours"] = int(hours)
        if seed is not None:
            kwargs["seed"] = seed
        return generate_hp1_dataset(**kwargs)
    if name == "classroom":
        kwargs = {}
        if hours is not None:
            kwargs["hours"] = float(hours)
        if seed is not None:
            kwargs["seed"] = seed
        return generate_classroom_dataset(**kwargs)
    raise ReproError(f"no dataset generator for model {model_name!r}")
