"""Synthetic multi-instance dataset construction (Section 8.1 of the paper).

For the MI scenario the paper builds 100 synthetic datasets per model by
multiplying the original time series with a constant delta drawn from
[0.8, 1.2] - amplifying or damping the values by up to 20 % while preserving
the distribution shape and respecting physical constraints.  The same
construction is used here; in addition, :func:`scale_dataset` accepts an
explicit delta so the Figure 6 dissimilarity sweep can control the distance
between the reference and the scaled dataset exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import ReproError

#: Series that must stay inside physical bounds after scaling.
_PHYSICAL_BOUNDS: Dict[str, tuple] = {
    "u": (0.0, 1.0),
    "dpos": (0.0, 100.0),
    "vpos": (0.0, 100.0),
    "occ": (0.0, None),
    "solrad": (0.0, None),
}

#: Paper's delta range for the MI scenario.
DELTA_RANGE = (0.8, 1.2)


def scale_dataset(
    dataset: Dataset,
    delta: float,
    name: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> Dataset:
    """Scale the dataset's series by a constant ``delta``.

    Parameters
    ----------
    dataset:
        The reference dataset.
    delta:
        Multiplicative factor.  The paper uses values in [0.8, 1.2].
    name:
        Optional name of the scaled dataset.
    columns:
        Which series to scale; defaults to all series.  After scaling, series
        with known physical constraints (ratings in [0, 1], positions in
        [0, 100] %, non-negative occupancy/radiation) are clipped back into
        their valid range, as the paper requires.
    """
    if delta <= 0:
        raise ReproError(f"delta must be positive, got {delta}")
    selected = list(columns) if columns is not None else dataset.columns
    series = {}
    for column, values in dataset.series.items():
        if column in selected:
            scaled = values * float(delta)
            bounds = _PHYSICAL_BOUNDS.get(column)
            if bounds is not None:
                low, high = bounds
                scaled = np.clip(scaled, low, high if high is not None else np.inf)
            series[column] = scaled
        else:
            series[column] = values.copy()
    meta = dict(dataset.meta)
    meta["delta"] = float(delta)
    meta["parent"] = dataset.name
    return Dataset(
        name=name or f"{dataset.name}_delta_{delta:.3f}".replace(".", "_"),
        time=dataset.time.copy(),
        series=series,
        meta=meta,
    )


def synthetic_family(
    dataset: Dataset,
    count: int,
    seed: int = 7,
    delta_range: tuple = DELTA_RANGE,
    columns: Optional[Sequence[str]] = None,
) -> List[Dataset]:
    """Build ``count`` synthetic datasets with deltas drawn from ``delta_range``.

    The first member always uses delta = 1.0 (the original dataset), matching
    the paper's setup where instance 1 is calibrated on the measured data and
    the remaining instances on scaled variants.
    """
    if count < 1:
        raise ReproError("count must be at least 1")
    low, high = delta_range
    if not (0 < low <= high):
        raise ReproError(f"invalid delta range: {delta_range}")
    rng = np.random.default_rng(seed)
    family: List[Dataset] = [scale_dataset(dataset, 1.0, name=f"{dataset.name}_instance_1", columns=columns)]
    for index in range(2, count + 1):
        delta = float(rng.uniform(low, high))
        family.append(
            scale_dataset(
                dataset, delta, name=f"{dataset.name}_instance_{index}", columns=columns
            )
        )
    return family


def deltas_of(family: Iterable[Dataset]) -> List[float]:
    """The delta factors recorded in a synthetic family's metadata."""
    return [float(member.meta.get("delta", 1.0)) for member in family]
