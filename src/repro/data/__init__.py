"""Measurement dataset generators and database loaders.

The paper calibrates its models on two proprietary datasets (the NIST
Net-Zero Energy Residential Test Facility data and measurements from a
classroom at SDU Campus Odense).  Neither is redistributable, so this
subpackage generates *synthetic but physically consistent* equivalents: the
ground-truth model (the same model family that is later calibrated, with the
Table 7 parameter values) is simulated under realistic input profiles and a
small measurement noise is added.  Because the generating process matches the
model family, calibration recovers the ground-truth parameters - which is
exactly the behaviour Table 7 reports ("parameter values converged to the
same values in all configurations").

For the multi-instance (MI) scenario the paper builds 100 synthetic datasets
per model by scaling the original series with a constant delta in [0.8, 1.2];
:mod:`repro.data.synthetic` implements the same construction.
"""

from repro.data.dataset import Dataset
from repro.data.nist import generate_hp0_dataset, generate_hp1_dataset
from repro.data.classroom import generate_classroom_dataset
from repro.data.synthetic import scale_dataset, synthetic_family
from repro.data.loaders import dataset_table_name, load_dataset
from repro.data.generators import generate_dataset_for

__all__ = [
    "Dataset",
    "generate_hp0_dataset",
    "generate_hp1_dataset",
    "generate_classroom_dataset",
    "generate_dataset_for",
    "scale_dataset",
    "synthetic_family",
    "load_dataset",
    "dataset_table_name",
]
