"""Loading datasets into the SQL database.

pgFMU's whole point is that measurements live in the DBMS and calibration /
simulation read them with plain SQL.  The loaders create one table per
dataset (``time`` plus one double-precision column per series) and bulk-insert
the rows, returning the SQL query that pgFMU's UDFs should be given as
``input_sql``.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from repro.data.dataset import Dataset
from repro.sqldb.database import Database
from repro.sqldb.schema import ColumnDefinition, TableSchema
from repro.sqldb.types import SqlType


def dataset_table_name(dataset: Dataset) -> str:
    """A SQL-safe table name derived from the dataset name."""
    name = re.sub(r"[^a-zA-Z0-9_]", "_", dataset.name.lower())
    if not name or not (name[0].isalpha() or name[0] == "_"):
        name = f"ds_{name}"
    return name


def load_dataset(
    database: Database,
    dataset: Dataset,
    table_name: Optional[str] = None,
    replace: bool = True,
) -> str:
    """Create (or replace) a measurements table for ``dataset`` and fill it.

    Returns the table name, so callers can build ``SELECT * FROM <table>``
    queries to hand to ``fmu_parest`` / ``fmu_simulate``.
    """
    name = (table_name or dataset_table_name(dataset)).lower()
    if database.has_table(name):
        if not replace:
            return name
        database.drop_table(name)
    columns = [ColumnDefinition(name="time", sql_type=SqlType.DOUBLE, not_null=True)]
    columns += [
        ColumnDefinition(name=column, sql_type=SqlType.DOUBLE) for column in dataset.columns
    ]
    schema = TableSchema(name=name, columns=columns, primary_key=["time"])
    database.create_table(schema)
    database.insert_rows(name, dataset.rows())
    return name


def load_datasets(
    database: Database, datasets: Iterable[Dataset], replace: bool = True
) -> list:
    """Load several datasets; returns their table names in order."""
    return [load_dataset(database, dataset, replace=replace) for dataset in datasets]


def measurements_query(table_name: str) -> str:
    """The canonical ``input_sql`` for a loaded dataset table."""
    return f"SELECT * FROM {table_name}"
