"""The traditional seven-step workflow of Figure 1, with per-step timing.

The baseline deliberately performs the inefficiencies pgFMU removes:

1. *Load FMU* - the archive is read from a file on disk.
2. *Read measurements* - the measurements are queried from the database and
   then written to (and re-read from) an intermediate CSV file, because the
   traditional modelling tools consume text files, not database cursors.
3. *Recalibrate* - Global + Local search on the training window.
4. *Validate & update* - RMSE on the held-out validation window, then the
   estimates are written back onto the model object by hand.
5. *Simulate* - the calibrated model is simulated over the whole window.
6. *Export predictions* - the simulation results are inserted back into the
   database row by row.
7. *Further analysis* - an aggregate SQL query over the stored predictions.
"""

from __future__ import annotations

import csv
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.estimation.estimator import Estimation
from repro.estimation.metrics import rmse
from repro.estimation.objective import MeasurementSet
from repro.fmi.archive import FmuArchive
from repro.fmi.model import FmuModel, load_fmu
from repro.sqldb.database import Database
from repro.sqldb.schema import ColumnDefinition, TableSchema
from repro.sqldb.types import SqlType


@dataclass
class StepTiming:
    """Wall-clock seconds spent in one workflow step."""

    name: str
    seconds: float


@dataclass
class WorkflowResult:
    """Outcome of one workflow run (any configuration)."""

    configuration: str
    model_name: str
    parameters: Dict[str, float]
    training_error: float
    validation_error: Optional[float]
    steps: List[StepTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(step.seconds for step in self.steps))

    def step_seconds(self, name: str) -> float:
        for step in self.steps:
            if step.name == name:
                return step.seconds
        raise ReproError(f"workflow has no step named {name!r}")

    def as_dict(self) -> dict:
        return {
            "configuration": self.configuration,
            "model": self.model_name,
            "parameters": dict(self.parameters),
            "training_error": self.training_error,
            "validation_error": self.validation_error,
            "steps": {step.name: step.seconds for step in self.steps},
            "total_seconds": self.total_seconds,
        }


class PythonWorkflow:
    """The traditional-stack workflow for one model instance.

    Parameters
    ----------
    database:
        The database holding the measurements table (and receiving the
        predictions at the end).
    archive:
        The FMU archive of the model to calibrate.
    measurements_table:
        Name of the measurements table.
    parameters:
        Names of the parameters to estimate.
    training_fraction:
        Fraction of the measurement window used for calibration (the rest is
        the validation window), matching the paper's Feb 1-21 / Feb 22-28
        split (0.75).
    ga_options / local_options / seed:
        Calibration budget, shared with the pgFMU configurations so the
        quality comparison is apples-to-apples.
    workdir:
        Directory for the intermediate files (a temp dir by default).
    """

    def __init__(
        self,
        database: Database,
        archive: FmuArchive,
        measurements_table: str,
        parameters: Sequence[str],
        training_fraction: float = 0.75,
        ga_options: Optional[dict] = None,
        local_options: Optional[dict] = None,
        seed: int = 1,
        workdir: Optional[str] = None,
        predictions_table: str = "predictions_python",
    ):
        self.database = database
        self.archive = archive
        self.measurements_table = measurements_table
        self.parameters = list(parameters)
        self.training_fraction = float(training_fraction)
        self.ga_options = dict(ga_options or {})
        self.local_options = dict(local_options or {})
        self.seed = seed
        self.workdir = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="pgfmu_baseline_"))
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.predictions_table = predictions_table

    # ------------------------------------------------------------------ #
    # Workflow steps
    # ------------------------------------------------------------------ #
    def run(self) -> WorkflowResult:
        """Execute all seven steps and return the per-step timings."""
        steps: List[StepTiming] = []

        started = time.perf_counter()
        fmu_path = self.workdir / f"{self.archive.model_name}.fmu"
        self.archive.write(fmu_path)
        model = load_fmu(fmu_path)
        steps.append(StepTiming("load_fmu", time.perf_counter() - started))

        started = time.perf_counter()
        measurements = self._read_measurements_via_csv()
        steps.append(StepTiming("read_measurements", time.perf_counter() - started))

        training, validation = measurements.split(self.training_fraction)

        started = time.perf_counter()
        estimation = Estimation(
            model=model,
            measurements=training,
            parameters=self.parameters,
            ga_options=self.ga_options,
            local_options=self.local_options,
            seed=self.seed,
        )
        calibration = estimation.estimate("global+local")
        steps.append(StepTiming("recalibrate", time.perf_counter() - started))

        started = time.perf_counter()
        validation_error = estimation.validate(calibration.parameters, validation)
        model.set_many(calibration.parameters)
        steps.append(StepTiming("validate_update", time.perf_counter() - started))

        started = time.perf_counter()
        simulation = self._simulate(model, measurements)
        steps.append(StepTiming("simulate", time.perf_counter() - started))

        started = time.perf_counter()
        self._export_predictions(simulation, measurements)
        steps.append(StepTiming("export_predictions", time.perf_counter() - started))

        started = time.perf_counter()
        self._further_analysis()
        steps.append(StepTiming("further_analysis", time.perf_counter() - started))

        return WorkflowResult(
            configuration="python",
            model_name=self.archive.model_name,
            parameters=calibration.parameters,
            training_error=calibration.error,
            validation_error=validation_error,
            steps=steps,
        )

    # ------------------------------------------------------------------ #
    # Step implementations
    # ------------------------------------------------------------------ #
    def _read_measurements_via_csv(self) -> MeasurementSet:
        """Query the DB, export to CSV, and read the CSV back (Figure 1 step 2)."""
        rows = self.database.query_dicts(f"SELECT * FROM {self.measurements_table} ORDER BY time")
        if not rows:
            raise ReproError(f"measurements table {self.measurements_table!r} is empty")
        csv_path = self.workdir / f"{self.measurements_table}.csv"
        columns = list(rows[0])
        with open(csv_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(columns)
            for row in rows:
                writer.writerow([row[c] for c in columns])
        with open(csv_path, newline="") as handle:
            reader = csv.DictReader(handle)
            parsed = [
                {key: float(value) for key, value in record.items()} for record in reader
            ]
        return MeasurementSet.from_rows(parsed)

    def _simulate(self, model: FmuModel, measurements: MeasurementSet):
        input_names = set(model.input_names())
        inputs = {
            name: (measurements.time, measurements.series[name])
            for name in measurements.variable_names()
            if name in input_names
        }
        return model.simulate(
            inputs=inputs,
            start_time=float(measurements.time[0]),
            stop_time=float(measurements.time[-1]),
            output_times=measurements.time,
        )

    def _export_predictions(self, simulation, measurements: MeasurementSet) -> None:
        table_name = self.predictions_table
        if self.database.has_table(table_name):
            self.database.drop_table(table_name)
        self.database.create_table(
            TableSchema(
                name=table_name,
                columns=[
                    ColumnDefinition("time", SqlType.DOUBLE, not_null=True),
                    ColumnDefinition("varname", SqlType.TEXT, not_null=True),
                    ColumnDefinition("value", SqlType.DOUBLE),
                ],
                primary_key=["time", "varname"],
            )
        )
        reported = [name for name in simulation.variables if name not in measurements.series or True]
        rows = []
        for i, t in enumerate(simulation.time):
            for name in reported:
                rows.append([float(t), name, float(simulation[name][i])])
        self.database.insert_rows(table_name, rows)

    def _further_analysis(self) -> dict:
        result = self.database.execute(
            f"SELECT varname, avg(value) AS mean_value, min(value) AS min_value, "
            f"max(value) AS max_value FROM {self.predictions_table} GROUP BY varname"
        )
        return {row["varname"]: row for row in result.to_dicts()}


def validation_rmse(
    model: FmuModel, measurements: MeasurementSet, observed: str
) -> float:
    """Convenience: RMSE of a model simulation against one observed series."""
    input_names = set(model.input_names())
    inputs = {
        name: (measurements.time, measurements.series[name])
        for name in measurements.variable_names()
        if name in input_names
    }
    result = model.simulate(
        inputs=inputs,
        start_time=float(measurements.time[0]),
        stop_time=float(measurements.time[-1]),
        output_times=measurements.time,
    )
    measured = measurements.series[observed]
    mask = ~np.isnan(measured)
    return rmse(measured[mask], result[observed][mask])
