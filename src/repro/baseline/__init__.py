"""The "Python" baseline: the traditional FMU software-stack workflow.

The paper's experiments compare pgFMU against a conventional workflow built
from separate tools (PyFMI + ModestPy + Assimulo + psycopg2 + pandas), with
explicit data export/import between the database and the modelling tools
(Figure 1).  This subpackage reproduces that baseline on top of our
substrates:

* :mod:`repro.baseline.workflow` - the seven-step workflow with per-step
  timing, including the explicit text-file interchange and the explicit
  export of predictions back into the database that pgFMU eliminates.
* :mod:`repro.baseline.code_metrics` - the per-operation code-line
  accounting behind Table 1 (88 lines of Python vs 4 lines of SQL).
"""

from repro.baseline.code_metrics import (
    CODE_LINE_TABLE,
    OperationCodeLines,
    code_lines_table,
)
from repro.baseline.workflow import PythonWorkflow, StepTiming, WorkflowResult

__all__ = [
    "PythonWorkflow",
    "WorkflowResult",
    "StepTiming",
    "OperationCodeLines",
    "CODE_LINE_TABLE",
    "code_lines_table",
]
