"""Code-line accounting for Table 1 of the paper.

Table 1 compares, operation by operation, how many lines of user code the
running-example workflow needs in the traditional Python stack versus pgFMU.
Rather than hard-coding the paper's numbers, this module keeps *actual code
snippets* a user would write in each stack (against our substrates, which
mirror the originals' APIs) and counts their effective lines, so the ratio is
derived from real code.  The snippets are also what the usability simulation
(Figure 8) uses as its workload-complexity measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: The seven operations of the running-example workflow (Figure 1 / Table 1).
OPERATIONS: List[str] = [
    "Load/build an FMU model",
    "Read historical measurements and control inputs",
    "Recalibrate the model",
    "Validate & update the FMU model",
    "Simulate the recalibrated model to predict temperatures",
    "Export predicted values to a DB",
    "Perform further analysis",
]

#: Python packages each operation touches in the traditional stack.
PYTHON_PACKAGES: Dict[str, List[str]] = {
    OPERATIONS[0]: ["PyFMI"],
    OPERATIONS[1]: ["psycopg2", "PyFMI", "pandas"],
    OPERATIONS[2]: ["ModestPy", "pandas"],
    OPERATIONS[3]: ["PyFMI", "pandas"],
    OPERATIONS[4]: ["PyFMI", "Assimulo", "numpy"],
    OPERATIONS[5]: ["psycopg2", "pandas"],
    OPERATIONS[6]: ["psycopg2", "PyFMI"],
}

#: User code for each operation with the traditional Python stack.
PYTHON_SNIPPETS: Dict[str, str] = {
    OPERATIONS[0]: """
from pyfmi import load_fmu
import os
workdir = '/tmp/hp_experiment'
model = load_fmu(os.path.join(workdir, 'hp1.fmu'))
""",
    OPERATIONS[1]: """
import psycopg2
import pandas as pd
connection = psycopg2.connect(host='localhost', dbname='energy', user='scientist')
cursor = connection.cursor()
cursor.execute('SELECT time, x, y, u FROM measurements ORDER BY time')
rows = cursor.fetchall()
measurements = pd.DataFrame(rows, columns=['time', 'x', 'y', 'u'])
measurements.to_csv(os.path.join(workdir, 'measurements.csv'), index=False)
inputs = measurements[['time', 'u']].values
model_inputs = ('u', inputs)
known_outputs = measurements[['time', 'x']]
cursor.close()
""",
    OPERATIONS[2]: """
from modestpy import Estimation
training = measurements[measurements['time'] < 504]
ideal = training[['time', 'x']].set_index('time')
inp = training[['time', 'u']].set_index('time')
known = {'C': 7.8, 'D': 0.0}
est_pars = {'Cp': (0.1, 10.0), 'R': (0.1, 10.0)}
session = Estimation(workdir, os.path.join(workdir, 'hp1.fmu'),
                     inp=inp, known=known, est=est_pars, ideal=ideal,
                     methods=('GA', 'SQP'))
estimates = session.estimate()
errors = session.validate()
best = estimates
for name, value in best.items():
    print(name, value)
""",
    OPERATIONS[3]: """
validation = measurements[measurements['time'] >= 504]
ideal_val = validation[['time', 'x']].set_index('time')
for name, value in best.items():
    model.set(name, value)
simulated = model.simulate(final_time=float(validation['time'].max()))
residuals = ideal_val['x'].values - simulated['x'][-len(ideal_val):]
validation_rmse = float((residuals ** 2).mean() ** 0.5)
""",
    OPERATIONS[4]: """
import numpy as np
from pyfmi.fmi_util import create_input_object
model.reset()
for name, value in best.items():
    model.set(name, value)
scenario_time = np.arange(0.0, 672.0, 1.0)
scenario_rating = np.clip(np.interp(scenario_time, measurements['time'], measurements['u']), 0, 1)
input_matrix = np.vstack((scenario_time, scenario_rating)).T
input_object = ('u', input_matrix)
options = model.simulate_options()
options['ncp'] = len(scenario_time) - 1
options['CVode_options'] = {'rtol': 1e-6, 'atol': 1e-8}
result = model.simulate(start_time=float(scenario_time[0]),
                        final_time=float(scenario_time[-1]),
                        input=input_object, options=options)
predicted_temperature = result['x']
predicted_power = result['y']
prediction_frame = pd.DataFrame({
    'time': result['time'],
    'x': predicted_temperature,
    'y': predicted_power,
})
prediction_frame = prediction_frame.drop_duplicates(subset='time')
prediction_frame = prediction_frame.sort_values('time')
prediction_frame.to_csv(os.path.join(workdir, 'predictions.csv'), index=False)
""",
    OPERATIONS[5]: """
cursor = connection.cursor()
cursor.execute('CREATE TABLE IF NOT EXISTS predictions (time float, varname text, value float)')
for _, row in prediction_frame.iterrows():
    cursor.execute('INSERT INTO predictions VALUES (%s, %s, %s)', (row['time'], 'x', row['x']))
""",
    OPERATIONS[6]: """
cursor.execute('SELECT avg(value), min(value), max(value) FROM predictions WHERE varname = %s', ('x',))
summary = cursor.fetchone()
cursor.execute('SELECT count(*) FROM predictions WHERE varname = %s AND value < %s', ('x', 18.0))
cold_hours = cursor.fetchone()[0]
connection.commit()
scenario_results = {}
for scenario, rating in (('no_heating', 0.0), ('max_heating', 1.0)):
    model.reset()
    for name, value in best.items():
        model.set(name, value)
    constant_input = ('u', np.vstack((scenario_time, np.full_like(scenario_time, rating))).T)
    outcome = model.simulate(start_time=0.0, final_time=672.0, input=constant_input)
    scenario_results[scenario] = outcome['x'][-1]
    cursor.execute('INSERT INTO predictions VALUES (%s, %s, %s)',
                   (672.0, 'x_' + scenario, float(outcome['x'][-1])))
connection.commit()
cursor.close()
connection.close()
print(summary, cold_hours, scenario_results)
""",
}

#: User code for each operation with pgFMU (SQL).  Operations without an
#: entry need no user code at all in pgFMU (the dash in Table 1).
PGFMU_SNIPPETS: Dict[str, str] = {
    OPERATIONS[0]: """
SELECT fmu_create('/tmp/hp_experiment/hp1.fmu', 'HP1Instance1');
""",
    OPERATIONS[2]: """
SELECT fmu_parest('{HP1Instance1}', '{SELECT * FROM measurements WHERE time < 504}', '{Cp, R}');
""",
    OPERATIONS[4]: """
SELECT * FROM fmu_simulate('HP1Instance1', 'SELECT * FROM measurements');
""",
    OPERATIONS[6]: """
SELECT varname, avg(value), min(value), max(value) FROM fmu_simulate('HP1Instance1', 'SELECT * FROM measurements') GROUP BY varname;
""",
}


def count_effective_lines(snippet: str) -> int:
    """Count non-empty, non-comment lines of a code snippet."""
    count = 0
    for line in snippet.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#") or stripped.startswith("--"):
            continue
        count += 1
    return count


@dataclass
class OperationCodeLines:
    """Per-operation code-line comparison (one row of Table 1)."""

    operation: str
    packages: List[str]
    python_lines: int
    pgfmu_lines: int


def code_lines_table() -> List[OperationCodeLines]:
    """The full Table 1: one entry per workflow operation plus the ratio."""
    rows = []
    for operation in OPERATIONS:
        rows.append(
            OperationCodeLines(
                operation=operation,
                packages=PYTHON_PACKAGES[operation],
                python_lines=count_effective_lines(PYTHON_SNIPPETS[operation]),
                pgfmu_lines=count_effective_lines(PGFMU_SNIPPETS.get(operation, "")),
            )
        )
    return rows


def totals() -> Dict[str, int]:
    """Total code lines per configuration and their ratio."""
    table = code_lines_table()
    python_total = sum(row.python_lines for row in table)
    pgfmu_total = sum(row.pgfmu_lines for row in table)
    return {
        "python": python_total,
        "pgfmu": pgfmu_total,
        "ratio": round(python_total / pgfmu_total, 2) if pgfmu_total else float("inf"),
    }


#: Precomputed table, importable as a constant.
CODE_LINE_TABLE: List[OperationCodeLines] = code_lines_table()
