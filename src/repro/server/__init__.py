"""The service layer: a socket server exposing the engine to many clients.

The in-process library becomes a multi-session service here - the "gateway
from library to millions of users" named in the ROADMAP.  Four modules,
split the way a real driver/server pair is:

* :mod:`repro.server.protocol` - the wire format: length-prefixed JSON
  messages with a value codec for bytes, timestamps and variants.
* :mod:`repro.server.service` - sessions, token authentication, and
  request dispatch onto per-session engine connections.
* :mod:`repro.server.server` - the TCP accept loop: thread-per-connection
  handlers, out-of-band cancel connections, graceful shutdown.
* :mod:`repro.server.client` - the network driver
  (:func:`repro.client.connect` / ``repro://host:port`` URLs) mirroring
  the PEP-249 Cursor surface of the in-process driver.

Typical use::

    from repro.server import serve
    import repro.client

    server = serve(database, port=0, tokens={"analyst": "s3cret"})
    conn = repro.client.connect(server.url, token="s3cret")
    conn.execute("SELECT 1").fetchone()

Concurrency model (see docs/architecture.md, "Service layer"): SELECTs run
concurrently under a shared statement lock; DML, DDL and UDF-calling
statements serialize; explicit transactions hold the lock to commit;
cancellation and ``statement_timeout`` are per session.
"""

from repro.server.client import RemoteConnection, RemoteCursor
from repro.server.client import connect as client_connect
from repro.server.protocol import PROTOCOL_VERSION
from repro.server.server import ReproServer, serve
from repro.server.service import ReproService

__all__ = [
    "ReproServer",
    "ReproService",
    "RemoteConnection",
    "RemoteCursor",
    "serve",
    "client_connect",
    "PROTOCOL_VERSION",
]
