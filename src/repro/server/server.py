"""The TCP server: accept loop, thread-per-connection, graceful shutdown.

A :class:`ReproServer` binds one listening socket and serves each client
connection on its own thread - the natural fit for the engine's
concurrency model, where a session's statements must run on one thread so
its explicit transactions own the statement lock correctly.

Connection lifecycle::

    client                                server
      | -- hello {token, options} ------->  authenticate, open session
      | <-- {ok, session, cancel_key} ---
      | -- {op: execute, sql, params} --->  dispatch on the session
      | <-- {ok, columns, rows, ...} -----
      | ...                                 (one request in flight at a time)
      | -- {op: close} ------------------>  close session, goodbye

Cancellation is out-of-band, exactly like PostgreSQL's ``CancelRequest``:
while a statement runs, its connection's socket is busy, so the client
opens a *second* short-lived connection whose first message is
``{op: cancel, session, cancel_key}``.  The service flips that session's
cancel token and the running statement unwinds cooperatively.

:meth:`ReproServer.shutdown` is graceful: stop accepting, cancel every
in-flight statement, shut client sockets down (which unblocks their
readers), and join the handler threads.  Sessions that were mid-transaction
roll back through their connection close, releasing the statement lock.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import ProtocolError, ReproError
from repro.server import protocol
from repro.server.service import ReproService, SessionState, error_response
from repro.sqldb.database import Database


class ReproServer:
    """A threaded socket server over one shared engine.

    Parameters
    ----------
    database:
        The :class:`~repro.sqldb.Database` to serve (a fresh in-memory one
        by default).  Pass ``repro.connect(...).database`` to serve a full
        pgFMU session - the fmu UDFs are then reachable over the wire.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    tokens:
        Credentials forwarded to :class:`~repro.server.service.ReproService`;
        None leaves the server open (no auth).
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        tokens: Union[Mapping[str, str], Iterable[str], None] = None,
        backlog: int = 128,
    ):
        self.service = ReproService(database, tokens=tokens)
        self._bind_host = host
        self._bind_port = port
        self._backlog = backlog
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._handlers: Dict[threading.Thread, Tuple[socket.socket, Dict[str, Any]]] = {}
        self._handlers_mutex = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ReproServer":
        """Bind, listen, and start accepting (returns self for chaining)."""
        if self._listener is not None:
            raise ReproError("server is already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._bind_host, self._bind_port))
        listener.listen(self._backlog)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) - resolves port 0 to the real port."""
        if self._listener is None:
            raise ReproError("server is not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def url(self) -> str:
        """The ``repro://host:port`` URL clients connect to."""
        host, port = self.address
        return f"repro://{host}:{port}"

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting, cancel in-flight statements, join handlers.

        Idempotent.  Handler threads still alive after ``timeout`` seconds
        are abandoned (they are daemons), which only happens if a statement
        ignores its cancel token.
        """
        self._stopping.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            _close_quietly(listener)
        with self._handlers_mutex:
            handlers = dict(self._handlers)
        for thread, (sock, slot) in handlers.items():
            session = slot.get("session")
            if isinstance(session, SessionState):
                session.connection.cancel()
            _shutdown_quietly(sock)
        for thread in handlers:
            thread.join(timeout=timeout)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
            self._accept_thread = None

    def __enter__(self) -> "ReproServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Accept loop and connection handlers
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set() and listener is not None:
            try:
                client, _addr = listener.accept()
            except OSError:
                break  # listener closed by shutdown()
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            slot: Dict[str, Any] = {}
            thread = threading.Thread(
                target=self._handle_connection,
                args=(client, slot),
                name="repro-server-conn",
                daemon=True,
            )
            with self._handlers_mutex:
                self._handlers[thread] = (client, slot)
            thread.start()

    def _handle_connection(self, sock: socket.socket, slot: Dict[str, Any]) -> None:
        session: Optional[SessionState] = None
        try:
            hello = protocol.recv_message(sock)
            if hello is None:
                return
            op = hello.get("op")
            if op == "cancel":
                # Out-of-band cancel connection: one request, one reply.
                cancelled = self.service.cancel(
                    hello.get("session"), hello.get("cancel_key")
                )
                protocol.send_message(sock, {"ok": True, "cancelled": cancelled})
                return
            if op != "hello":
                protocol.send_message(
                    sock,
                    error_response(ProtocolError("the first message must be a hello")),
                )
                return
            try:
                session = self.service.open_session(
                    hello.get("token"), hello.get("options")
                )
            except ReproError as exc:
                protocol.send_message(sock, error_response(exc))
                return
            slot["session"] = session
            from repro import __version__

            protocol.send_message(
                sock,
                {
                    "ok": True,
                    "session": session.id,
                    "cancel_key": session.cancel_key,
                    "user": session.user,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "server": f"repro/{__version__}",
                },
            )
            while not self._stopping.is_set():
                request = protocol.recv_message(sock)
                if request is None:
                    break
                if request.get("op") == "close":
                    protocol.send_message(sock, {"ok": True})
                    break
                protocol.send_message(sock, self.service.dispatch(session, request))
        except (OSError, ProtocolError):
            # The peer vanished or sent garbage; the finally block already
            # rolls back and releases everything this session held.
            pass
        finally:
            if session is not None:
                self.service.close_session(session)
            _close_quietly(sock)
            with self._handlers_mutex:
                self._handlers.pop(threading.current_thread(), None)


def serve(
    database: Optional[Database] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    tokens: Union[Mapping[str, str], Iterable[str], None] = None,
) -> ReproServer:
    """Start a :class:`ReproServer` and return it (already listening)."""
    return ReproServer(database, host=host, port=port, tokens=tokens).start()


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


def _shutdown_quietly(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
