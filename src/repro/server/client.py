"""The network driver: ``repro.client.connect("repro://host:port")``.

A :class:`RemoteConnection` / :class:`RemoteCursor` pair mirroring the
in-process PEP-249 surface of :mod:`repro.sqldb.connection` - same
``$1`` parameter style, same ``execute``/``executemany``/fetch family,
same transaction and context-manager semantics - so code written against
``repro.connect()`` ports to the server by swapping the connect call::

    conn = repro.client.connect("repro://127.0.0.1:5433", token="s3cret")
    cur = conn.cursor()
    cur.execute("SELECT model_id, model_name FROM fmus WHERE model_id = $1", [1])
    cur.fetchall()

Differences from the in-process driver, all forced by the wire:

* results are fully materialized on the server and shipped in the response
  (no driver-side streaming; the frame cap bounds a single result);
* :meth:`RemoteConnection.cancel` opens a *second* TCP connection carrying
  the session's ``cancel_key`` (out-of-band, PostgreSQL-style), because
  this connection's socket is blocked waiting for the statement's reply;
* server-side errors arrive as ``{"ok": false, "error": ...}`` responses
  and re-raise locally as the matching :class:`~repro.errors.ReproError`
  subclass (falling back to :class:`~repro.errors.ServerError` for types
  this client does not know).

One request is in flight per connection at a time (a mutex enforces it),
matching the simple request/response protocol.  Use one connection per
thread for parallelism - connections are cheap, sessions are isolated.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import repro.errors as _errors
from repro.errors import ProtocolError, ReproError, ServerError
from repro.server import protocol

#: PEP-249 module attributes, matching the in-process driver.
apilevel = "2.0"
threadsafety = 2
paramstyle = "numeric_dollar"


def connect(
    url: str,
    token: Optional[str] = None,
    statement_timeout: Optional[float] = None,
    connect_timeout: float = 10.0,
) -> "RemoteConnection":
    """Open a session on a :class:`~repro.server.server.ReproServer`.

    ``url`` is ``repro://host:port`` (``host:port`` is accepted too).
    ``token`` authenticates against the server's configured tokens; leave
    it None for an open server.  ``statement_timeout`` seeds the session's
    per-statement deadline (server-side, changeable later through
    :attr:`RemoteConnection.statement_timeout`).
    """
    host, port = _parse_url(url)
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        hello: Dict[str, Any] = {"op": "hello", "token": token}
        if statement_timeout is not None:
            hello["options"] = {"statement_timeout": statement_timeout}
        protocol.send_message(sock, hello)
        reply = protocol.recv_message(sock)
        if reply is None:
            raise ProtocolError("server closed the connection during the handshake")
        if not reply.get("ok"):
            raise _error_from_response(reply)
        sock.settimeout(None)  # statements may legitimately run for a while
        return RemoteConnection(sock, host, port, reply)
    except BaseException:
        _close_quietly(sock)
        raise


class RemoteConnection:
    """One session on a repro server; mirrors the in-process Connection."""

    def __init__(self, sock: socket.socket, host: str, port: int, hello: Dict[str, Any]):
        self._sock: Optional[socket.socket] = sock
        self._host = host
        self._port = port
        self.session_id: int = hello["session"]
        self.cancel_key: str = hello["cancel_key"]
        self.user: str = hello.get("user", "anonymous")
        self.protocol_version: int = hello.get("protocol", protocol.PROTOCOL_VERSION)
        self._began = False
        self._request_mutex = threading.Lock()

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and wait for its response (serialized)."""
        with self._request_mutex:
            sock = self._sock
            if sock is None:
                raise ServerError("connection is closed")
            try:
                protocol.send_message(sock, request)
                response = protocol.recv_message(sock)
            except OSError as exc:
                self._abandon()
                raise ServerError(f"connection to the server was lost: {exc}") from exc
            if response is None:
                self._abandon()
                raise ServerError("server closed the connection")
        if not response.get("ok"):
            raise _error_from_response(response)
        return response

    def cursor(self) -> "RemoteCursor":
        self._check_open()
        return RemoteCursor(self)

    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> "RemoteCursor":
        """Convenience: create a cursor and execute one statement on it."""
        return self.cursor().execute(sql, params)

    def explain(self, sql: str, params: Optional[Sequence[Any]] = None) -> str:
        """The server-side query plan for ``sql``, as rendered text."""
        self._check_open()
        response = self._roundtrip(
            {"op": "explain", "sql": sql, "params": _params_list(params)}
        )
        return response["text"]

    def ping(self) -> bool:
        """A server round-trip confirming the session is alive."""
        self._check_open()
        return bool(self._roundtrip({"op": "ping"}).get("ok"))

    # ------------------------------------------------------------------ #
    # Cancellation (out-of-band, through a fresh connection)
    # ------------------------------------------------------------------ #
    def cancel(self, timeout: float = 10.0) -> bool:
        """Cancel the statement currently running on *this* session.

        Opens a second short-lived connection (this one is blocked waiting
        for the statement's reply) carrying the session id and secret
        ``cancel_key``.  Safe from any thread; returns True when the server
        found and cancelled a running statement.
        """
        cancel_sock = socket.create_connection((self._host, self._port), timeout=timeout)
        try:
            protocol.send_message(
                cancel_sock,
                {
                    "op": "cancel",
                    "session": self.session_id,
                    "cancel_key": self.cancel_key,
                },
            )
            reply = protocol.recv_message(cancel_sock)
            return bool(reply and reply.get("cancelled"))
        finally:
            _close_quietly(cancel_sock)

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    def begin(self) -> None:
        """Leave autocommit: start an explicit transaction on the session."""
        self._check_open()
        self._roundtrip({"op": "begin"})
        self._began = True

    def commit(self) -> None:
        """Commit the transaction this session began (no-op otherwise)."""
        self._check_open()
        if self._began:
            self._roundtrip({"op": "commit"})
            self._began = False

    def rollback(self) -> None:
        """Roll back the transaction this session began (no-op otherwise)."""
        self._check_open()
        if self._began:
            self._roundtrip({"op": "rollback"})
            self._began = False

    @property
    def in_transaction(self) -> bool:
        return self._began

    # ------------------------------------------------------------------ #
    # Statement timeout (server-side, per session)
    # ------------------------------------------------------------------ #
    @property
    def statement_timeout(self) -> Optional[float]:
        """This session's per-statement deadline in seconds (None disables).

        Both reads and writes round-trip to the server - the authoritative
        value lives with the session, exactly like ``SET statement_timeout``
        in PostgreSQL.
        """
        self._check_open()
        return self._roundtrip({"op": "set"}).get("statement_timeout")

    @statement_timeout.setter
    def statement_timeout(self, value: Optional[float]) -> None:
        self._check_open()
        self._roundtrip({"op": "set", "statement_timeout": value})

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._sock is None

    def close(self) -> None:
        """Say goodbye and drop the socket; the server rolls back any open
        transaction when the session closes.  Idempotent."""
        with self._request_mutex:
            sock = self._sock
            if sock is None:
                return
            self._sock = None
            try:
                protocol.send_message(sock, {"op": "close"})
                protocol.recv_message(sock)
            except (OSError, ProtocolError):
                pass  # the server notices EOF and cleans the session up
            finally:
                self._began = False
                _close_quietly(sock)

    def _abandon(self) -> None:
        """Drop a broken socket without the goodbye handshake."""
        sock, self._sock = self._sock, None
        self._began = False
        if sock is not None:
            _close_quietly(sock)

    def __enter__(self) -> "RemoteConnection":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if not self.closed and self._began:
                if exc_type is None:
                    self.commit()
                else:
                    self.rollback()
        finally:
            self.close()

    def _check_open(self) -> None:
        if self._sock is None:
            raise ServerError("connection is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"RemoteConnection({state}, repro://{self._host}:{self._port}, session={self.session_id})"


class RemoteCursor:
    """A DB-API-style cursor over a :class:`RemoteConnection`.

    The full result of each statement arrives with the response, so the
    fetch family and iteration walk a local buffer - semantics match the
    in-process :class:`~repro.sqldb.connection.Cursor` exactly.
    """

    def __init__(self, connection: RemoteConnection):
        self._connection = connection
        self._columns: List[str] = []
        self._rows: Optional[List[List[Any]]] = None
        self._position = 0
        self._rowcount = -1
        self._closed = False
        self.arraysize = 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def connection(self) -> RemoteConnection:
        return self._connection

    @property
    def description(self) -> Optional[List[Tuple]]:
        """PEP-249 column descriptions (name first, remaining fields None)."""
        if self._rows is None or not self._columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._columns]

    @property
    def rowcount(self) -> int:
        return self._rowcount

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> "RemoteCursor":
        """Execute one statement on the session; returns the cursor."""
        self._check_open()
        self._clear()
        response = self._connection._roundtrip(
            {"op": "execute", "sql": sql, "params": _params_list(params)}
        )
        self._load(response)
        return self

    def executemany(self, sql: str, seq_of_params: Sequence[Sequence[Any]]) -> "RemoteCursor":
        """Execute the statement once per parameter set, atomically.

        The whole batch ships as one request and runs server-side under the
        same all-or-nothing contract as the in-process driver: outside an
        explicit transaction a failing set rolls back every set before it.
        """
        self._check_open()
        self._clear()
        response = self._connection._roundtrip(
            {
                "op": "executemany",
                "sql": sql,
                "params_seq": [_params_list(params) or [] for params in seq_of_params],
            }
        )
        self._load(response)
        return self

    def cancel(self) -> None:
        """Out-of-band cancel of the statement running on this cursor's
        session (see :meth:`RemoteConnection.cancel`)."""
        self._connection.cancel()

    def _clear(self) -> None:
        self._columns = []
        self._rows = None
        self._position = 0
        self._rowcount = -1

    def _load(self, response: Dict[str, Any]) -> None:
        self._columns = list(response.get("columns") or [])
        self._rows = list(response.get("rows") or [])
        self._rowcount = response.get("rowcount", -1)

    # ------------------------------------------------------------------ #
    # Fetching
    # ------------------------------------------------------------------ #
    def fetchone(self) -> Optional[List[Any]]:
        self._check_result()
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[List[Any]]:
        self._check_result()
        count = self.arraysize if size is None else int(size)
        rows = self._rows[self._position : self._position + count]
        self._position += len(rows)
        return rows

    def fetchall(self) -> List[List[Any]]:
        self._check_result()
        rows = self._rows[self._position :]
        self._position = len(self._rows)
        return rows

    def __iter__(self) -> Iterator[List[Any]]:
        return self

    def __next__(self) -> List[Any]:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._closed = True
        self._rows = None

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServerError("cursor is closed")
        self._connection._check_open()

    def _check_result(self) -> None:
        self._check_open()
        if self._rows is None:
            raise ServerError("no query has been executed on this cursor")


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _parse_url(url: str) -> Tuple[str, int]:
    """``repro://host:port`` (or bare ``host:port``) -> ``(host, port)``."""
    rest = url
    if "//" in rest:
        scheme, _, rest = rest.partition("//")
        scheme = scheme.rstrip(":")
        if scheme and scheme != "repro":
            raise ProtocolError(f"unsupported URL scheme {scheme!r} (expected repro://)")
    rest = rest.rstrip("/")
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host:
        raise ProtocolError(f"malformed server URL {url!r} (expected repro://host:port)")
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError(f"malformed port in server URL {url!r}") from None
    return host, port


def _params_list(params: Optional[Sequence[Any]]) -> Optional[List[Any]]:
    if params is None:
        return None
    return list(params)


def _error_from_response(response: Dict[str, Any]) -> ReproError:
    """The typed exception a ``{"ok": false}`` response stands for."""
    error = response.get("error")
    if not isinstance(error, dict):
        return ServerError("server reported an error without details")
    name = error.get("type", "")
    message = error.get("message", "server error")
    exc_type = getattr(_errors, str(name), None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        return exc_type(message)
    return ServerError(f"{name}: {message}" if name else message)


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
