"""Sessions, token authentication, and request dispatch.

One :class:`ReproService` wraps one shared :class:`~repro.sqldb.Database`.
Every client connection gets a :class:`SessionState`: its own driver-layer
:class:`~repro.sqldb.connection.Connection` (so cancel tokens, transaction
ownership and ``statement_timeout`` are all per session), a numeric session
id, and a random ``cancel_key`` that authorizes out-of-band cancellation -
the same shape as PostgreSQL's ``BackendKeyData`` + ``CancelRequest``.

Authentication is token-based: the service is configured with a mapping of
user names to secret tokens (or a bare iterable of tokens).  The first
message of a connection carries the token; comparisons are constant-time.
With no tokens configured the service is open (every hello is accepted as
``anonymous``) - convenient for tests and localhost tooling, explicit
enough not to happen by accident in a configured deployment.

Dispatch is deliberately a plain request/response mapping: ``execute``,
``executemany``, ``explain``, ``begin``/``commit``/``rollback``, ``set``,
``ping``.  Engine errors never kill the session - they serialize into
``{"ok": false, "error": {...}}`` responses and the client re-raises them
as the matching typed :class:`~repro.errors.ReproError` subclass.
"""

from __future__ import annotations

import hmac
import itertools
import secrets
import threading
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.errors import AuthError, ProtocolError, ReproError
from repro.sqldb.connection import Connection
from repro.sqldb.database import Database


class SessionState:
    """One authenticated client session on the service."""

    __slots__ = ("id", "user", "cancel_key", "connection")

    def __init__(self, session_id: int, user: str, connection: Connection):
        self.id = session_id
        self.user = user
        #: Secret authorizing out-of-band cancellation of this session.
        self.cancel_key = secrets.token_hex(16)
        self.connection = connection


def error_response(exc: BaseException) -> Dict[str, Any]:
    """The wire form of a failed request."""
    return {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


class ReproService:
    """Session registry + auth + dispatch over one shared database.

    Parameters
    ----------
    database:
        The engine every session shares.  Statement-level isolation comes
        from the database's statement lock (SELECTs share, writes
        serialize) and per-connection cancel tokens.
    tokens:
        ``{user: token}`` credentials, a bare iterable of accepted tokens
        (users are then named ``client``), or None for an open service.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        tokens: Union[Mapping[str, str], Iterable[str], None] = None,
    ):
        self.database = database if database is not None else Database()
        if tokens is None:
            self._tokens: Optional[Dict[str, str]] = None
        elif isinstance(tokens, Mapping):
            self._tokens = dict(tokens)
        else:
            token_list = list(tokens)
            if len(token_list) == 1:
                self._tokens = {"client": token_list[0]}
            else:
                self._tokens = {
                    f"client{i}": token for i, token in enumerate(token_list)
                }
        self._sessions: Dict[int, SessionState] = {}
        self._sessions_mutex = threading.Lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Authentication and session lifecycle
    # ------------------------------------------------------------------ #
    def authenticate(self, token: Optional[str]) -> str:
        """The user a token belongs to; raises :class:`AuthError` otherwise."""
        if self._tokens is None:
            return "anonymous"
        if isinstance(token, str):
            for user, expected in self._tokens.items():
                if hmac.compare_digest(expected.encode(), token.encode()):
                    return user
        raise AuthError("authentication failed: unknown or missing token")

    def open_session(
        self, token: Optional[str], options: Optional[Mapping[str, Any]] = None
    ) -> SessionState:
        """Authenticate and create a session with its own connection."""
        user = self.authenticate(token)
        connection = Connection(self.database)
        session = SessionState(next(self._ids), user, connection)
        for key, value in dict(options or {}).items():
            if key == "statement_timeout":
                connection.statement_timeout = _timeout_value(value)
            else:
                raise ProtocolError(f"unknown session option {key!r}")
        with self._sessions_mutex:
            self._sessions[session.id] = session
        return session

    def close_session(self, session: SessionState) -> None:
        """Tear a session down: its open transaction rolls back, its
        statement-lock hold (if any) releases with it."""
        with self._sessions_mutex:
            self._sessions.pop(session.id, None)
        session.connection.close()

    def session_count(self) -> int:
        with self._sessions_mutex:
            return len(self._sessions)

    def cancel(self, session_id: Any, cancel_key: Any) -> bool:
        """Out-of-band cancel: flip the target session's active statement.

        Requires the session's ``cancel_key``; a wrong key (or an unknown
        session) reports False without revealing which of the two it was.
        Returns True when a running statement was told to cancel.
        """
        with self._sessions_mutex:
            session = self._sessions.get(session_id)
        if session is None or not isinstance(cancel_key, str):
            return False
        if not hmac.compare_digest(session.cancel_key.encode(), cancel_key.encode()):
            return False
        return session.connection.cancel()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def dispatch(self, session: SessionState, request: Mapping[str, Any]) -> Dict[str, Any]:
        """Serve one request; engine errors become error responses."""
        try:
            return self._dispatch(session, request)
        except ReproError as exc:
            return error_response(exc)
        except Exception as exc:  # noqa: BLE001 - the session must survive
            return error_response(ReproError(f"internal server error: {exc}"))

    def _dispatch(self, session: SessionState, request: Mapping[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        connection = session.connection
        if op == "execute":
            cursor = connection.cursor().execute(
                _sql_field(request), request.get("params")
            )
            result = cursor.result
            return {
                "ok": True,
                "columns": list(result.columns) if result is not None else [],
                "rows": result.rows if result is not None else [],
                "rowcount": cursor.rowcount,
            }
        if op == "executemany":
            params_seq = request.get("params_seq")
            if not isinstance(params_seq, list):
                raise ProtocolError("executemany requires a params_seq list")
            cursor = connection.cursor().executemany(_sql_field(request), params_seq)
            result = cursor.result
            return {
                "ok": True,
                "columns": list(result.columns) if result is not None else [],
                "rows": result.rows if result is not None else [],
                "rowcount": cursor.rowcount,
            }
        if op == "explain":
            return {
                "ok": True,
                "text": connection.explain(_sql_field(request), request.get("params")),
            }
        if op == "begin":
            connection.begin()
            return {"ok": True}
        if op == "commit":
            connection.commit()
            return {"ok": True}
        if op == "rollback":
            connection.rollback()
            return {"ok": True}
        if op == "set":
            if "statement_timeout" in request:
                connection.statement_timeout = _timeout_value(
                    request["statement_timeout"]
                )
            return {"ok": True, "statement_timeout": connection.statement_timeout}
        if op == "ping":
            return {"ok": True, "user": session.user, "session": session.id}
        raise ProtocolError(f"unknown operation {op!r}")


def _sql_field(request: Mapping[str, Any]) -> str:
    sql = request.get("sql")
    if not isinstance(sql, str):
        raise ProtocolError("request is missing its sql string")
    return sql


def _timeout_value(value: Any) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("statement_timeout must be a number of seconds or null")
    return float(value)
