"""Wire protocol: length-prefixed JSON frames with a typed value codec.

Every message is one frame::

    +----------------+---------------------------+
    | u32 big-endian |  UTF-8 JSON object        |
    | payload length |  (the message)            |
    +----------------+---------------------------+

JSON keeps the protocol debuggable (``nc`` + a hex dump is enough to watch
a session) while the framing keeps it streamable: a reader never has to
scan for delimiters, and torn frames are detected instead of misparsed.

Values that JSON cannot carry natively round-trip through tagged objects
(``{"__repro__": kind, ...}``): ``bytes`` (base64), ``datetime``
(ISO-8601), and the engine's :class:`~repro.sqldb.types.Variant`.  NumPy
scalars flatten to their Python equivalents and NumPy arrays to lists -
the client sees plain Python either way.  NaN/Infinity use Python's JSON
literals, which is fine for this Python-to-Python protocol.

Requests and responses are free-form dicts; the conventions
(``{"op": ...}`` / ``{"ok": true, ...}``) live in
:mod:`repro.server.service` and :mod:`repro.server.client`.
"""

from __future__ import annotations

import base64
import datetime
import json
import socket
import struct
from typing import Any, Dict, Optional

from repro.errors import ProtocolError
from repro.sqldb.types import SqlType, Variant

#: Protocol revision; the hello response carries it so clients can detect
#: incompatible servers before sending statements.
PROTOCOL_VERSION = 1

#: Hard cap on one frame (requests and responses); oversized frames are
#: rejected before allocation so a corrupt length prefix cannot OOM the
#: server.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")
_TAG = "__repro__"


# --------------------------------------------------------------------------- #
# Value codec
# --------------------------------------------------------------------------- #
def _json_default(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {_TAG: "bytes", "b64": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, datetime.datetime):
        return {_TAG: "timestamp", "iso": value.isoformat()}
    if isinstance(value, Variant):
        return {_TAG: "variant", "value": value.value, "type": value.original_type.value}
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy arrays and scalars
        return tolist()
    item = getattr(value, "item", None)
    if callable(item):  # any remaining numpy-like scalar
        return item()
    raise TypeError(f"cannot serialize a {type(value).__name__} value on the wire")


def _object_hook(obj: Dict[str, Any]) -> Any:
    kind = obj.get(_TAG)
    if kind is None:
        return obj
    if kind == "bytes":
        return base64.b64decode(obj["b64"])
    if kind == "timestamp":
        return datetime.datetime.fromisoformat(obj["iso"])
    if kind == "variant":
        return Variant(obj["value"], SqlType(obj["type"]))
    raise ProtocolError(f"unknown tagged value kind {kind!r}")


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def encode_message(message: Dict[str, Any]) -> bytes:
    """One wire frame (header + JSON payload) for ``message``."""
    try:
        payload = json.dumps(
            message, separators=(",", ":"), default=_json_default
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable message: {exc}") from exc
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte frame cap"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_message(payload: bytes) -> Dict[str, Any]:
    """The message inside one frame payload."""
    try:
        message = json.loads(payload.decode("utf-8"), object_hook=_object_hook)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Frame and send one message (blocking until fully written)."""
    sock.sendall(encode_message(message))


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one message; None on a clean EOF between frames.

    EOF *inside* a frame (header or payload cut short) raises
    :class:`~repro.errors.ProtocolError` - the peer died mid-message and
    the remainder of the stream cannot be trusted.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_MESSAGE_BYTES}-byte cap"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_message(payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes, or None on EOF at a frame boundary."""
    if count == 0:
        return b""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)
