"""Flattening: turn a parsed Modelica model into FMU metadata + equations.

Flattening performs the semantic analysis the real Modelica tools do before
code generation, restricted to our subset:

* evaluate declaration equations and attribute modifiers of parameters and
  constants (constant folding),
* classify components into parameters, inputs, outputs, and states,
* associate every ``der(x) = ...`` equation with its state and every
  algebraic equation with its output/local variable,
* substitute constants into equations so the runtime only sees parameters,
  states, and inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ModelicaSemanticError
from repro.fmi.dynamics import OdeSystem, OutputEquation, StateEquation
from repro.fmi.model_description import DefaultExperiment, ModelDescription
from repro.fmi.variables import Causality, ScalarVariable, Variability, VariableType
from repro.modelica.ast_nodes import (
    ComponentDeclaration,
    FunctionCall,
    Identifier,
    ModelDefinition,
)
from repro.modelica.codegen import evaluate_constant, render_expression


@dataclass
class FlattenedModel:
    """The result of flattening: FMU metadata plus the ODE equation payload."""

    model_description: ModelDescription
    ode_system: OdeSystem


def _modifier_value(
    component: ComponentDeclaration, key: str, bindings: Dict[str, float]
) -> Optional[float]:
    """Evaluate a numeric attribute modifier such as ``start``/``min``/``max``."""
    expr = component.modifiers.get(key)
    if expr is None:
        return None
    if isinstance(expr, Identifier) and key == "unit":
        return None
    return evaluate_constant(expr, bindings)


def _classify(model: ModelDefinition) -> Tuple[list, list, list, list, list]:
    """Split component declarations by prefix."""
    parameters, constants, inputs, outputs, plain = [], [], [], [], []
    for component in model.components:
        if component.type_name not in ("Real", "Integer"):
            raise ModelicaSemanticError(
                f"component {component.name!r}: only Real and Integer components "
                f"are supported, got {component.type_name}"
            )
        if component.prefix == "parameter":
            parameters.append(component)
        elif component.prefix == "constant":
            constants.append(component)
        elif component.prefix == "input":
            inputs.append(component)
        elif component.prefix == "output":
            outputs.append(component)
        else:
            plain.append(component)
    return parameters, constants, inputs, outputs, plain


def flatten_model(
    model: ModelDefinition,
    default_experiment: Optional[DefaultExperiment] = None,
) -> FlattenedModel:
    """Flatten a parsed model into (:class:`ModelDescription`, :class:`OdeSystem`)."""
    parameters, constants, inputs, outputs, plain = _classify(model)

    # Evaluate constants and parameter defaults in declaration order so later
    # declarations may reference earlier ones.
    bindings: Dict[str, float] = {}
    constant_values: Dict[str, float] = {}
    for component in constants:
        if component.value is None:
            raise ModelicaSemanticError(
                f"constant {component.name!r} must have a declaration equation"
            )
        value = evaluate_constant(component.value, bindings)
        bindings[component.name] = value
        constant_values[component.name] = value
    parameter_values: Dict[str, float] = {}
    for component in parameters:
        if component.value is not None:
            value = evaluate_constant(component.value, bindings)
        else:
            start = _modifier_value(component, "start", bindings)
            value = start if start is not None else 0.0
        bindings[component.name] = value
        parameter_values[component.name] = value

    known_names = {c.name for c in model.components} | {"time"}

    # Partition equations into state equations (der(x) = ...) and algebraic
    # equations (v = ...).
    derivative_exprs: Dict[str, str] = {}
    algebraic_exprs: Dict[str, str] = {}
    for equation in model.equations:
        lhs = equation.lhs
        rhs_text = render_expression(equation.rhs, known_names)
        if isinstance(lhs, FunctionCall) and lhs.name == "der":
            if len(lhs.args) != 1 or not isinstance(lhs.args[0], Identifier):
                raise ModelicaSemanticError("der() must wrap a single variable name")
            state_name = lhs.args[0].name
            if state_name in derivative_exprs:
                raise ModelicaSemanticError(f"duplicate state equation for {state_name!r}")
            derivative_exprs[state_name] = rhs_text
        elif isinstance(lhs, Identifier):
            if lhs.name in algebraic_exprs:
                raise ModelicaSemanticError(f"duplicate equation for {lhs.name!r}")
            algebraic_exprs[lhs.name] = rhs_text
        else:
            raise ModelicaSemanticError(
                "equation left-hand sides must be a variable or der(variable)"
            )

    # Substitute constants into equation texts by treating them as parameters
    # with fixed values (simpler and equivalent for simulation purposes).
    all_parameter_values = dict(parameter_values)
    all_parameter_values.update(constant_values)

    # States: plain variables with a der() equation; also allow outputs with
    # der() equations (Modelica permits "output Real x; der(x) = ...").
    state_equations: List[StateEquation] = []
    state_names = set()
    for component in plain + outputs:
        if component.name in derivative_exprs:
            start = _modifier_value(component, "start", bindings)
            if start is None and component.value is not None:
                start = evaluate_constant(component.value, bindings)
            state_equations.append(
                StateEquation(
                    name=component.name,
                    derivative=derivative_exprs[component.name],
                    start=start if start is not None else 0.0,
                )
            )
            state_names.add(component.name)
    missing_states = set(derivative_exprs) - state_names
    if missing_states:
        raise ModelicaSemanticError(
            "der() applied to undeclared variables: " + ", ".join(sorted(missing_states))
        )
    if not state_equations:
        raise ModelicaSemanticError(
            f"model {model.name!r} has no der() equations; at least one state is required"
        )

    # Outputs and algebraic locals.
    output_equations: List[OutputEquation] = []
    for component in outputs + plain:
        if component.name in state_names:
            continue
        if component.name in algebraic_exprs:
            output_equations.append(
                OutputEquation(name=component.name, expression=algebraic_exprs[component.name])
            )
        elif component.prefix == "output":
            raise ModelicaSemanticError(
                f"output {component.name!r} has no defining equation"
            )

    unused = set(algebraic_exprs) - {o.name for o in output_equations} - state_names
    if unused:
        raise ModelicaSemanticError(
            "equations defined for undeclared variables: " + ", ".join(sorted(unused))
        )

    ode = OdeSystem(
        states=state_equations,
        outputs=output_equations,
        inputs=[c.name for c in inputs],
        parameters=all_parameter_values,
    )

    # Build the model description.
    variables: List[ScalarVariable] = []
    for component in parameters:
        variables.append(
            ScalarVariable(
                name=component.name,
                causality=Causality.PARAMETER,
                variability=Variability.TUNABLE,
                var_type=VariableType.REAL,
                start=parameter_values[component.name],
                minimum=_modifier_value(component, "min", bindings),
                maximum=_modifier_value(component, "max", bindings),
                description=component.description,
            )
        )
    for component in constants:
        variables.append(
            ScalarVariable(
                name=component.name,
                causality=Causality.LOCAL,
                variability=Variability.CONSTANT,
                var_type=VariableType.REAL,
                start=constant_values[component.name],
                description=component.description,
            )
        )
    for component in inputs:
        variables.append(
            ScalarVariable(
                name=component.name,
                causality=Causality.INPUT,
                variability=Variability.CONTINUOUS,
                var_type=VariableType.REAL,
                start=_modifier_value(component, "start", bindings) or 0.0,
                minimum=_modifier_value(component, "min", bindings),
                maximum=_modifier_value(component, "max", bindings),
                description=component.description,
            )
        )
    for component in outputs + plain:
        is_state = component.name in state_names
        causality = Causality.OUTPUT if component.prefix == "output" else Causality.LOCAL
        start = _modifier_value(component, "start", bindings)
        variables.append(
            ScalarVariable(
                name=component.name,
                causality=causality,
                variability=Variability.CONTINUOUS,
                var_type=VariableType.REAL,
                start=start if start is not None else (0.0 if is_state else None),
                minimum=_modifier_value(component, "min", bindings),
                maximum=_modifier_value(component, "max", bindings),
                description=component.description,
            )
        )

    md = ModelDescription.build(
        model_name=model.name,
        variables=variables,
        default_experiment=default_experiment,
        description=model.description,
    )
    return FlattenedModel(model_description=md, ode_system=ode)
