"""Abstract syntax tree nodes for the Modelica subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass
class NumberLiteral:
    """A numeric literal."""

    value: float


@dataclass
class Identifier:
    """A reference to a component or built-in constant."""

    name: str


@dataclass
class UnaryOp:
    """Unary plus/minus."""

    op: str
    operand: "Expression"


@dataclass
class BinaryOp:
    """Binary arithmetic operator (``+ - * / ^``)."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass
class FunctionCall:
    """A call to a built-in function (``sin``, ``exp``, ...) or ``der``."""

    name: str
    args: List["Expression"]


Expression = Union[NumberLiteral, Identifier, UnaryOp, BinaryOp, FunctionCall]


# --------------------------------------------------------------------------- #
# Declarations and equations
# --------------------------------------------------------------------------- #
@dataclass
class ComponentDeclaration:
    """A component clause such as ``parameter Real A(min=-10, max=10) = 1.5;``.

    Attributes
    ----------
    name:
        Component name.
    type_name:
        Declared type (``Real``, ``Integer``, ...).
    prefix:
        One of ``"parameter"``, ``"constant"``, ``"input"``, ``"output"`` or
        ``""`` for plain (state) variables.
    modifiers:
        Attribute modifiers from the parenthesized modification list
        (``start``, ``min``, ``max``, ``unit``...), as unevaluated expressions
        except ``unit`` which is a string.
    value:
        The declaration equation right-hand side, if present.
    description:
        Trailing string comment, if present.
    """

    name: str
    type_name: str = "Real"
    prefix: str = ""
    modifiers: Dict[str, Expression] = field(default_factory=dict)
    value: Optional[Expression] = None
    description: str = ""


@dataclass
class Equation:
    """An equation ``lhs = rhs`` from the ``equation`` section."""

    lhs: Expression
    rhs: Expression


@dataclass
class ModelDefinition:
    """A parsed ``model ... end ...;`` definition."""

    name: str
    components: List[ComponentDeclaration] = field(default_factory=list)
    equations: List[Equation] = field(default_factory=list)
    description: str = ""

    def component(self, name: str) -> Optional[ComponentDeclaration]:
        """Look up a component declaration by name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        return None
