"""Modelica-subset compiler.

pgFMU's ``fmu_create`` accepts three kinds of model references: a compiled
``.fmu`` file, a Modelica ``.mo`` file, or inline Modelica source.  The
latter two require a Modelica compiler (the paper relies on
JModelica/OpenModelica).  This subpackage implements a small but genuine
compiler for the subset of Modelica those examples use:

* ``model``/``end`` blocks with component declarations
  (``parameter``/``input``/``output``/``constant`` prefixes, ``Real`` and
  ``Integer`` types, attribute modifiers such as ``start``, ``min``, ``max``,
  and declaration equations),
* an ``equation`` section with ``der(x) = expr`` state equations and
  algebraic output equations,
* arithmetic expressions with the Modelica operator set (including ``^``)
  and calls to elementary functions.

The entry point :func:`compile_fmu` mirrors PyFMI/JModelica's function of the
same name and produces a :class:`repro.fmi.FmuArchive`.
"""

from repro.modelica.compiler import compile_fmu, compile_model
from repro.modelica.parser import parse_model
from repro.modelica.flatten import flatten_model

__all__ = ["compile_fmu", "compile_model", "parse_model", "flatten_model"]
