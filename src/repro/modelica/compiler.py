"""Compiler driver: Modelica source/file -> FMU archive.

The entry point :func:`compile_fmu` mirrors JModelica/PyFMI's ``compile_fmu``:
it accepts either a path to a ``.mo`` file or inline Modelica source, runs the
parser and flattener, and packages the result into an FMU archive, optionally
writing it to disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.errors import ModelicaError
from repro.fmi.archive import FmuArchive
from repro.fmi.model_description import DefaultExperiment
from repro.modelica.flatten import flatten_model
from repro.modelica.parser import parse_model

PathLike = Union[str, Path]


def _looks_like_path(model_ref: str) -> bool:
    """Heuristic distinguishing a file path from inline Modelica source."""
    text = model_ref.strip()
    if text.lower().endswith(".mo") and "\n" not in text and " " not in text.split("/")[-1][:-3]:
        return True
    return Path(text).suffix == ".mo" and Path(text).exists()


def _read_source(model_ref: str) -> str:
    """Return Modelica source text given a path or inline code."""
    text = model_ref.strip()
    if "model" in text and "end" in text and ";" in text and not text.lower().endswith(".mo"):
        return model_ref
    path = Path(text)
    if path.suffix == ".mo":
        if not path.exists():
            raise ModelicaError(f"Modelica file does not exist: {path}")
        return path.read_text(encoding="utf-8")
    # Fall back to treating the reference as inline source; the parser will
    # produce a precise error if it is not.
    return model_ref


def compile_model(
    model_ref: str,
    default_experiment: Optional[DefaultExperiment] = None,
) -> FmuArchive:
    """Compile Modelica source (inline or a ``.mo`` path) into an FMU archive."""
    source = _read_source(model_ref)
    model = parse_model(source)
    flattened = flatten_model(model, default_experiment=default_experiment)
    return FmuArchive(
        model_description=flattened.model_description,
        ode_system=flattened.ode_system,
        source=source,
    )


def compile_fmu(
    model_ref: str,
    output_path: Optional[PathLike] = None,
    default_experiment: Optional[DefaultExperiment] = None,
) -> Union[FmuArchive, Path]:
    """Compile a Modelica model and optionally write the ``.fmu`` file.

    Parameters
    ----------
    model_ref:
        A ``.mo`` file path or inline Modelica source.
    output_path:
        When given, the compiled FMU is written there and the path is
        returned; otherwise the in-memory :class:`FmuArchive` is returned.
    default_experiment:
        Optional default experiment to embed into ``modelDescription.xml``.
    """
    archive = compile_model(model_ref, default_experiment=default_experiment)
    if output_path is None:
        return archive
    return archive.write(output_path)
