"""Recursive-descent parser for the Modelica subset."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ModelicaSyntaxError
from repro.modelica.ast_nodes import (
    BinaryOp,
    ComponentDeclaration,
    Equation,
    Expression,
    FunctionCall,
    Identifier,
    ModelDefinition,
    NumberLiteral,
    UnaryOp,
)
from repro.modelica.lexer import Token, tokenize

_TYPE_NAMES = {"Real", "Integer", "Boolean", "String"}
_PREFIXES = {"parameter", "constant", "input", "output"}


class Parser:
    """Parses a token list into a :class:`ModelDefinition`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ModelicaSyntaxError:
        token = token or self._peek()
        return ModelicaSyntaxError(f"line {token.line}, column {token.column}: {message}")

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            raise self._error(f"expected {expected!r}, found {token.value!r}")
        return self._advance()

    def _match(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    # ------------------------------------------------------------------ #
    # Grammar
    # ------------------------------------------------------------------ #
    def parse_model(self) -> ModelDefinition:
        """Parse a single model definition (optionally inside ``within``)."""
        if self._match("keyword", "within"):
            # Skip an optional package path terminated by ';'.
            while self._peek().kind != "eof" and not self._match("op", ";"):
                self._advance()

        self._expect("keyword", "model")
        name_token = self._expect("ident") if self._peek().kind == "ident" else self._expect("keyword")
        model = ModelDefinition(name=name_token.value)
        if self._peek().kind == "string":
            model.description = self._advance().value

        while True:
            token = self._peek()
            if token.kind == "eof":
                raise self._error(f"unexpected end of input inside model {model.name!r}")
            if token.kind == "keyword" and token.value == "equation":
                self._advance()
                break
            if token.kind == "keyword" and token.value == "end":
                return self._finish_model(model)
            model.components.append(self._parse_component())

        while True:
            token = self._peek()
            if token.kind == "eof":
                raise self._error(f"unexpected end of input inside model {model.name!r}")
            if token.kind == "keyword" and token.value == "end":
                return self._finish_model(model)
            if token.kind == "keyword" and token.value == "annotation":
                self._skip_annotation()
                continue
            model.equations.append(self._parse_equation())

    def _finish_model(self, model: ModelDefinition) -> ModelDefinition:
        self._expect("keyword", "end")
        end_name = self._advance()
        if end_name.kind not in ("ident", "keyword") or end_name.value != model.name:
            raise self._error(
                f"'end {end_name.value}' does not match model name {model.name!r}",
                end_name,
            )
        self._expect("op", ";")
        return model

    def _skip_annotation(self) -> None:
        self._expect("keyword", "annotation")
        self._expect("op", "(")
        depth = 1
        while depth > 0:
            token = self._advance()
            if token.kind == "eof":
                raise self._error("unterminated annotation")
            if token.kind == "op" and token.value == "(":
                depth += 1
            elif token.kind == "op" and token.value == ")":
                depth -= 1
        self._match("op", ";")

    # ------------------------------------------------------------------ #
    # Component declarations
    # ------------------------------------------------------------------ #
    def _parse_component(self) -> ComponentDeclaration:
        prefix = ""
        token = self._peek()
        if token.kind == "keyword" and token.value in _PREFIXES:
            prefix = token.value
            self._advance()

        type_token = self._peek()
        if type_token.kind == "keyword" and type_token.value in _TYPE_NAMES:
            self._advance()
            type_name = type_token.value
        else:
            raise self._error(f"expected a type name, found {type_token.value!r}")

        name_token = self._expect("ident")
        declaration = ComponentDeclaration(
            name=name_token.value, type_name=type_name, prefix=prefix
        )

        if self._match("op", "("):
            self._parse_modifiers(declaration)

        if self._match("op", "="):
            declaration.value = self._parse_expression()

        if self._peek().kind == "string":
            declaration.description = self._advance().value

        self._expect("op", ";")
        return declaration

    def _parse_modifiers(self, declaration: ComponentDeclaration) -> None:
        while True:
            key_token = self._expect("ident")
            self._expect("op", "=")
            if self._peek().kind == "string":
                value: Expression = Identifier(self._advance().value)
            else:
                value = self._parse_expression()
            declaration.modifiers[key_token.value] = value
            if self._match("op", ","):
                continue
            self._expect("op", ")")
            return

    # ------------------------------------------------------------------ #
    # Equations
    # ------------------------------------------------------------------ #
    def _parse_equation(self) -> Equation:
        lhs = self._parse_expression()
        self._expect("op", "=")
        rhs = self._parse_expression()
        self._expect("op", ";")
        return Equation(lhs=lhs, rhs=rhs)

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> Expression:
        return self._parse_additive()

    def _parse_additive(self) -> Expression:
        expr = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                expr = BinaryOp(op=token.value, left=expr, right=self._parse_multiplicative())
            else:
                return expr

    def _parse_multiplicative(self) -> Expression:
        expr = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self._advance()
                expr = BinaryOp(op=token.value, left=expr, right=self._parse_unary())
            else:
                return expr

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind == "op" and token.value in ("+", "-"):
            self._advance()
            return UnaryOp(op=token.value, operand=self._parse_unary())
        return self._parse_power()

    def _parse_power(self) -> Expression:
        base = self._parse_primary()
        if self._match("op", "^"):
            exponent = self._parse_unary()
            return BinaryOp(op="^", left=base, right=exponent)
        return base

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return NumberLiteral(float(token.value))
        if token.kind in ("ident", "keyword") and (
            token.kind == "ident" or token.value == "der"
        ):
            self._advance()
            name = token.value
            # Dotted names (e.g. Modelica.Constants.pi) collapse to the last part.
            while self._match("op", "."):
                part = self._expect("ident")
                name = part.value
            if self._match("op", "("):
                args: List[Expression] = []
                if not self._match("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._match("op", ","):
                            continue
                        self._expect("op", ")")
                        break
                return FunctionCall(name=name, args=args)
            return Identifier(name)
        if token.kind == "op" and token.value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise self._error(f"unexpected token {token.value!r} in expression")


def parse_model(source: str) -> ModelDefinition:
    """Parse Modelica source text into a :class:`ModelDefinition`."""
    if not source or not source.strip():
        raise ModelicaSyntaxError("empty Modelica source")
    return Parser(tokenize(source)).parse_model()
