"""Expression code generation: Modelica AST -> FMU equation strings.

The FMU equation payload (:mod:`repro.fmi.dynamics`) stores right-hand sides
as Python-syntax arithmetic strings.  This module renders parsed Modelica
expressions into that form (mapping ``^`` to ``**`` and validating function
names) and provides constant folding used to evaluate declaration equations
and attribute modifiers.
"""

from __future__ import annotations

from typing import Mapping, Optional, Set

from repro.errors import ModelicaSemanticError
from repro.fmi.expressions import ALLOWED_CONSTANTS, ALLOWED_FUNCTIONS
from repro.modelica.ast_nodes import (
    BinaryOp,
    Expression,
    FunctionCall,
    Identifier,
    NumberLiteral,
    UnaryOp,
)

_BINARY_TEMPLATES = {
    "+": "({left} + {right})",
    "-": "({left} - {right})",
    "*": "({left} * {right})",
    "/": "({left} / {right})",
    "^": "({left} ** {right})",
}


def render_expression(expr: Expression, known_names: Optional[Set[str]] = None) -> str:
    """Render a Modelica expression AST as a Python-syntax string.

    Parameters
    ----------
    expr:
        Parsed expression.
    known_names:
        Optional set of declared component names; identifiers outside this
        set (and outside the built-in constants) raise a semantic error so
        typos are caught at compile time rather than at simulation time.
    """
    if isinstance(expr, NumberLiteral):
        return repr(expr.value)
    if isinstance(expr, Identifier):
        if (
            known_names is not None
            and expr.name not in known_names
            and expr.name not in ALLOWED_CONSTANTS
            and expr.name != "time"
        ):
            raise ModelicaSemanticError(f"undeclared identifier {expr.name!r} in expression")
        return expr.name
    if isinstance(expr, UnaryOp):
        operand = render_expression(expr.operand, known_names)
        return f"(-{operand})" if expr.op == "-" else f"(+{operand})"
    if isinstance(expr, BinaryOp):
        template = _BINARY_TEMPLATES.get(expr.op)
        if template is None:
            raise ModelicaSemanticError(f"unsupported operator {expr.op!r}")
        return template.format(
            left=render_expression(expr.left, known_names),
            right=render_expression(expr.right, known_names),
        )
    if isinstance(expr, FunctionCall):
        if expr.name == "der":
            raise ModelicaSemanticError(
                "der() may only appear on the left-hand side of an equation"
            )
        if expr.name not in ALLOWED_FUNCTIONS:
            raise ModelicaSemanticError(f"unsupported function {expr.name!r}")
        args = ", ".join(render_expression(a, known_names) for a in expr.args)
        return f"{expr.name}({args})"
    raise ModelicaSemanticError(f"unsupported expression node: {type(expr).__name__}")


def evaluate_constant(expr: Expression, bindings: Mapping[str, float]) -> float:
    """Evaluate an expression that must reduce to a number at compile time.

    Used for declaration equations of parameters/constants and for attribute
    modifiers (``start``, ``min``, ``max``).  ``bindings`` provides the values
    of previously evaluated constants and parameters.
    """
    if isinstance(expr, NumberLiteral):
        return float(expr.value)
    if isinstance(expr, Identifier):
        if expr.name in bindings:
            return float(bindings[expr.name])
        if expr.name in ALLOWED_CONSTANTS:
            return float(ALLOWED_CONSTANTS[expr.name])
        raise ModelicaSemanticError(
            f"cannot evaluate identifier {expr.name!r} at compile time "
            "(only constants and previously declared parameters are allowed)"
        )
    if isinstance(expr, UnaryOp):
        value = evaluate_constant(expr.operand, bindings)
        return -value if expr.op == "-" else value
    if isinstance(expr, BinaryOp):
        left = evaluate_constant(expr.left, bindings)
        right = evaluate_constant(expr.right, bindings)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                raise ModelicaSemanticError("division by zero in constant expression")
            return left / right
        if expr.op == "^":
            return left ** right
        raise ModelicaSemanticError(f"unsupported operator {expr.op!r} in constant expression")
    if isinstance(expr, FunctionCall):
        if expr.name not in ALLOWED_FUNCTIONS:
            raise ModelicaSemanticError(
                f"unsupported function {expr.name!r} in constant expression"
            )
        args = [evaluate_constant(a, bindings) for a in expr.args]
        return float(ALLOWED_FUNCTIONS[expr.name](*args))
    raise ModelicaSemanticError(
        f"unsupported expression node in constant expression: {type(expr).__name__}"
    )
