"""pgFMU reproduction: in-DBMS storage, simulation and calibration of FMUs.

This package reproduces the system described in "pgFMU: Integrating Data
Management with Physical System Modelling" (EDBT 2020) as a self-contained
Python library.  The most common entry points:

* :class:`repro.core.PgFmu` - a pgFMU session (database + model catalogue +
  ``fmu_*`` SQL UDFs + MADlib-style ML UDFs).
* :class:`repro.sqldb.Database` - the in-memory SQL engine on its own.
* :func:`repro.modelica.compile_fmu` / :func:`repro.fmi.load_fmu` - the
  Modelica compiler and FMU runtime.
* :mod:`repro.harness` - one function per table/figure of the paper.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.core import PgFmu
from repro.fmi import FmuArchive, FmuModel, load_fmu
from repro.modelica import compile_fmu
from repro.sqldb import Database

__version__ = "1.0.0"

__all__ = [
    "PgFmu",
    "Database",
    "FmuArchive",
    "FmuModel",
    "load_fmu",
    "compile_fmu",
    "__version__",
]
