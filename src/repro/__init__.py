"""pgFMU reproduction: in-DBMS storage, simulation and calibration of FMUs.

This package reproduces the system described in "pgFMU: Integrating Data
Management with Physical System Modelling" (EDBT 2020) as a self-contained
Python library.  The public API is layered like a real database system:

* :func:`repro.connect` - the **driver layer**: a PEP-249-style
  :class:`~repro.sqldb.connection.Connection` / Cursor pair with parameter
  binding, ``executemany`` and transactions, plus ``conn.session`` for the
  object layer.
* :class:`repro.core.Session` - the **object layer**: ``session.create(...)``
  returns fluent :class:`~repro.core.handles.InstanceHandle` objects
  (``inst.set_initial(...).simulate(...)``) and ``session.simulate_many``
  batches a same-model fleet through one shared input pass and one
  vectorized ``(N, d)`` integration.
* ``database.install_extension("pgfmu" | "madlib")`` - the **extension
  layer**: UDF packs are declared with decorators and installed like
  PostgreSQL extensions; ``SELECT * FROM fmu_extensions()`` lists them.
* :class:`repro.core.PgFmu` - the original monolithic facade, kept as thin
  deprecated shims over the layers above.
* :class:`repro.sqldb.Database` - the in-memory SQL engine on its own.
* :func:`repro.serve` / :func:`repro.client.connect` - the **service
  layer**: a threaded socket server exposing one shared engine to many
  authenticated sessions over a length-prefixed JSON wire protocol
  (:mod:`repro.server`), and the matching network driver.
* :func:`repro.modelica.compile_fmu` / :func:`repro.fmi.load_fmu` - the
  Modelica compiler and FMU runtime.
* :mod:`repro.harness` - one function per table/figure of the paper.

See README.md for a quickstart, docs/architecture.md for the layer
walkthrough and module map, and docs/sql_reference.md for the full SQL
surface.
"""

from typing import Optional

from repro.core import InstanceHandle, ModelHandle, PgFmu, Session
from repro.fmi import FmuArchive, FmuModel, load_fmu
from repro.modelica import compile_fmu
from repro.sqldb import Connection, Cursor, Database, Extension

__version__ = "1.1.0"


def connect(
    database: Optional[Database] = None,
    storage_dir: Optional[str] = None,
    register_ml: bool = True,
    path: Optional[str] = None,
    fsync: bool = True,
    statement_timeout: Optional[float] = None,
    **session_options,
) -> Connection:
    """Open a pgFMU connection (the application-level driver entry point).

    Boots a :class:`~repro.core.Session` (installing the ``pgfmu`` extension
    and, with ``register_ml=True``, ``madlib``) and returns a DB-API-style
    :class:`~repro.sqldb.Connection` over its database.  The object layer
    stays reachable through ``conn.session``::

        with repro.connect() as conn:
            cur = conn.cursor()
            cur.execute("SELECT fmu_create($1, 'HP1Instance1')", [hp1_source()])
            inst = conn.session.instance(cur.fetchone()[0])
            inst.calibrate(measurements="SELECT * FROM measurements")

    ``path`` makes the database **durable**: the SQL state (model
    catalogue, measurements, FMU archive blobs) lives in a write-ahead
    log + page store at ``path`` / ``path + ".wal"`` and is recovered on
    the next ``connect(path=...)`` - committed transactions survive a
    crash, models stay calibrated across process restarts.  A string or
    ``Path`` first argument is taken as the path, so the short form reads
    like ``sqlite3.connect``::

        with repro.connect("fleet.db") as conn:
            ...

    ``storage_dir`` is the directory for the FMU archive *file* store
    (defaults to a temp dir); with ``path`` set, archives are additionally
    persisted as blobs inside the database, so the file store is just a
    cache.  ``statement_timeout`` (seconds) installs a deadline around
    every statement; an overrun raises the typed
    :class:`~repro.errors.TimeoutError` (see ``Cursor.cancel()`` for
    cross-thread cancellation).  ``session_options`` are forwarded to
    :class:`~repro.core.Session` (``ga_options``, ``local_options``,
    ``seed``).
    """
    from pathlib import Path

    if isinstance(database, (str, Path)):
        if path is not None:
            raise ValueError(
                "pass either an existing database or a storage path, not both"
            )
        database, path = None, database
    if path is not None:
        if database is not None:
            raise ValueError(
                "pass either an existing database or a storage path, not both"
            )
        from repro.sqldb.storage import StorageEngine

        database = Database(storage=StorageEngine(path, fsync=fsync))
    session = Session(
        database=database,
        storage_dir=storage_dir,
        register_ml=register_ml,
        **session_options,
    )
    if statement_timeout is not None:
        session.database.statement_timeout = statement_timeout
    return session.connection()


def __getattr__(name: str):
    # The service layer is imported lazily so that `import repro` does not
    # pull in the socket server for purely in-process users.
    if name in ("serve", "ReproServer"):
        from repro import server as _server

        return getattr(_server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "connect",
    "serve",
    "ReproServer",
    "Session",
    "PgFmu",
    "InstanceHandle",
    "ModelHandle",
    "Connection",
    "Cursor",
    "Database",
    "Extension",
    "FmuArchive",
    "FmuModel",
    "load_fmu",
    "compile_fmu",
    "__version__",
]
