"""Statement deadlines and cooperative cancellation.

A :class:`CancelToken` is created per statement by the database facade
(honouring its ``statement_timeout``) and installed as the *ambient* token
for the duration of the statement.  Long-running loops - executor plan
operators, solver step loops, ``FmuModel.simulate`` - call
:func:`check_active` (or hold the token and call :meth:`CancelToken.check`)
at safe points; when the deadline has passed or :meth:`CancelToken.cancel`
was called from another thread, the next check raises a typed
:class:`~repro.errors.TimeoutError` / :class:`~repro.errors.CancelledError`
and the statement unwinds.  Cancellation is cooperative: nothing is
interrupted mid-operation, so in-memory state stays consistent and an open
transaction can still be rolled back normally.

The ambient token lives in a :class:`contextvars.ContextVar`, so nested
statements (UDFs issuing SQL, correlated subqueries) inherit the outer
statement's deadline instead of resetting the clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Optional

from repro.errors import CancelledError, TimeoutError


class CancelToken:
    """A per-statement deadline + cancellation flag.

    Parameters
    ----------
    timeout:
        Optional deadline in seconds from creation; ``None`` means no
        deadline (the token can still be cancelled).  A timeout of 0 trips
        at the very first check, which tests use for determinism.
    """

    __slots__ = ("deadline", "cancelled")

    def __init__(self, timeout: Optional[float] = None):
        self.deadline = None if timeout is None else time.monotonic() + float(timeout)
        self.cancelled = False

    def cancel(self) -> None:
        """Request cancellation; the next :meth:`check` raises."""
        self.cancelled = True

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def check(self) -> None:
        """Raise if cancelled or past the deadline (cheap when neither)."""
        if self.cancelled:
            raise CancelledError("statement cancelled")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise TimeoutError("statement timed out (statement_timeout exceeded)")


_ACTIVE: ContextVar[Optional[CancelToken]] = ContextVar("repro_cancel_token", default=None)


def active_token() -> Optional[CancelToken]:
    """The ambient token of the executing statement, or None."""
    return _ACTIVE.get()


@contextmanager
def activate(token: CancelToken):
    """Install ``token`` as the ambient token for the enclosed block."""
    handle = _ACTIVE.set(token)
    try:
        yield token
    finally:
        _ACTIVE.reset(handle)


def check_active() -> None:
    """Check the ambient token, if any (the common fast path is one get)."""
    token = _ACTIVE.get()
    if token is not None:
        token.check()
