"""Unified chaos-injection framework: named fault points across the engine.

Grown out of the storage layer's crash injector, this module is the single
registry every subsystem checks when it crosses a failure-prone boundary.
The registered points:

=============  ========================================================
point          where it fires
=============  ========================================================
wal.append     buffering a record into the write-ahead log
wal.sync       the commit-time WAL write + fsync
pager.read     reading a page from the page store
pager.write    writing a page to the page store
solver.step    each (sparse-checked) solver integration step
kernel.eval    each compiled-kernel right-hand-side evaluation
btree.node_write  each ordered-index (B-tree) node mutation
=============  ========================================================

plus the engine's historical checkpoint labels
(``checkpoint.before_header`` / ``checkpoint.after_header``).

Two trigger styles are supported per point: **deterministic** (fire on the
``nth`` hit) and **probabilistic** (fire with probability ``p`` per hit,
from a seeded private RNG so chaos runs replay exactly).  A spec disarms
after ``trips`` firings, which is how transient faults - the kind a
:class:`~repro.solvers.retry.RetryPolicy` should survive - are modelled.

Storage components receive their injector explicitly (constructor
argument, as before).  Non-storage points (solvers, kernels) read an
*ambient* injector installed with :func:`activate`, so chaos tests can
reach into a solver loop without threading a parameter through every
layer.  With no injector armed the ambient check is a single ``is None``
test.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Optional, Sequence

from repro.errors import InjectedCrash, SolverError

#: Points whose default injected error is a solver failure (retryable);
#: every other point defaults to :class:`InjectedCrash` (storage crash).
_SOLVER_POINTS = {"solver.step", "kernel.eval"}

KNOWN_POINTS = (
    "wal.append",
    "wal.sync",
    "pager.read",
    "pager.write",
    "solver.step",
    "kernel.eval",
    "btree.node_write",
    "checkpoint.before_header",
    "checkpoint.after_header",
)


class _FaultSpec:
    """One armed fault point: when it fires and what it raises."""

    __slots__ = ("point", "nth", "probability", "rng", "error", "trips", "hits", "fired")

    def __init__(
        self,
        point: str,
        nth: int,
        probability: Optional[float],
        seed: int,
        error: Optional[BaseException],
        trips: int,
    ):
        self.point = point
        self.nth = int(nth)
        self.probability = probability
        self.rng = random.Random(seed) if probability is not None else None
        self.error = error
        self.trips = int(trips)
        self.hits = 0
        self.fired = 0

    @property
    def armed(self) -> bool:
        return self.fired < self.trips

    def should_fire(self) -> bool:
        if not self.armed:
            return False
        self.hits += 1
        if self.probability is not None:
            return self.rng.random() < self.probability
        return self.hits >= self.nth

    def make_error(self) -> BaseException:
        self.fired += 1
        if self.error is not None:
            if isinstance(self.error, type):
                return self.error(f"injected fault at {self.point!r}")
            return self.error
        if self.point in _SOLVER_POINTS:
            return SolverError(f"injected fault at {self.point!r}")
        return InjectedCrash(f"injected fault at {self.point!r}")


class FaultInjector:
    """Arms fault points across the engine (for robustness tests).

    The legacy storage-crash parameters are kept verbatim (the recovery
    suite depends on their exact byte-level semantics):

    Parameters
    ----------
    fail_after_bytes:
        Let this many bytes of physical WAL writes through, then crash
        mid-write - the tail of the in-flight sync is torn off exactly at
        the byte limit.
    fail_before_sync:
        Crash at the next :meth:`WalWriter.sync` before any pending byte
        reaches the file - the whole in-flight transaction vanishes.
    fail_at:
        A set of named engine fault points (e.g. ``"checkpoint.after_header"``);
        the first :meth:`check_point` call with an armed label crashes.

    General points are armed with :meth:`arm`; every firing is recorded in
    :attr:`events` so harnesses can assert which faults actually struck.
    """

    def __init__(
        self,
        fail_after_bytes: Optional[int] = None,
        fail_before_sync: bool = False,
        fail_at: Optional[Sequence[str]] = None,
    ):
        self.fail_after_bytes = fail_after_bytes
        self.fail_before_sync = fail_before_sync
        self.fail_at = set(fail_at or [])
        self.tripped = False
        self._written = 0
        self._specs: Dict[str, List[_FaultSpec]] = {}
        #: Names of points that actually fired, in order.
        self.events: List[str] = []

    # ------------------------------------------------------------------ #
    # General registry
    # ------------------------------------------------------------------ #
    def arm(
        self,
        point: str,
        nth: int = 1,
        probability: Optional[float] = None,
        seed: int = 0,
        error: Optional[BaseException] = None,
        trips: int = 1,
    ) -> "FaultInjector":
        """Arm a named point; returns ``self`` for chaining.

        Parameters
        ----------
        point:
            The point name (see module docstring).
        nth:
            Deterministic trigger: fire on the ``nth`` hit of the point
            (ignored when ``probability`` is given).
        probability:
            Probabilistic trigger: fire with this per-hit probability,
            drawn from a private ``random.Random(seed)`` so runs replay.
        error:
            Exception instance or class to raise.  Defaults to
            :class:`~repro.errors.SolverError` for solver/kernel points and
            :class:`~repro.errors.InjectedCrash` for storage points.
        trips:
            Disarm after this many firings (transient-fault modelling);
            the default of 1 makes every fault one-shot.
        """
        self._specs.setdefault(point, []).append(
            _FaultSpec(point, nth, probability, seed, error, trips)
        )
        return self

    def armed_points(self) -> List[str]:
        """Every point with at least one still-armed spec."""
        return sorted(
            point
            for point, specs in self._specs.items()
            if any(spec.armed for spec in specs)
        )

    # ------------------------------------------------------------------ #
    # Legacy storage-crash triggers
    # ------------------------------------------------------------------ #
    @property
    def armed(self) -> bool:
        return not self.tripped and (
            self.fail_after_bytes is not None
            or self.fail_before_sync
            or bool(self.fail_at)
        )

    def trip(self) -> InjectedCrash:
        self.tripped = True
        return InjectedCrash("injected storage crash")

    def write_budget(self, size: int) -> int:
        """How many bytes of an imminent ``size``-byte write may proceed."""
        if self.tripped or self.fail_after_bytes is None:
            return size
        remaining = self.fail_after_bytes - self._written
        self._written += size
        return min(size, max(0, remaining))

    def check_point(self, label: str) -> None:
        """Raise if the named fault point is armed and due to fire."""
        if not self.tripped and label in self.fail_at:
            raise self.trip()
        specs = self._specs.get(label)
        if not specs:
            return
        for spec in specs:
            if spec.should_fire():
                self.events.append(label)
                raise spec.make_error()


# --------------------------------------------------------------------------- #
# Ambient injector (solver / kernel points)
# --------------------------------------------------------------------------- #
#: The ambient injector lives in a ContextVar, NOT a process-global: each
#: thread (and each contextvars context) sees only the injector it armed
#: itself.  Concurrent server sessions and parallel chaos tests therefore
#: cannot observe - or trip over - each other's injected faults, and
#: :func:`activate` is reentrant per context via set/reset tokens.
_ACTIVE: ContextVar[Optional[FaultInjector]] = ContextVar(
    "repro_fault_injector", default=None
)


def active_injector() -> Optional[FaultInjector]:
    """The ambient injector installed by :func:`activate` in this thread/
    context, or None."""
    return _ACTIVE.get()


@contextmanager
def activate(injector: FaultInjector):
    """Install ``injector`` as the ambient injector for the enclosed block.

    Solver step loops and kernel evaluations consult the ambient injector;
    storage components keep taking theirs explicitly.  Nesting restores the
    previous injector on exit, and the installation is thread/context-local:
    other threads keep seeing their own (usually no) injector.
    """
    handle = _ACTIVE.set(injector)
    try:
        yield injector
    finally:
        _ACTIVE.reset(handle)


def check(point: str) -> None:
    """Check ``point`` against the ambient injector (no-op when none)."""
    injector = _ACTIVE.get()
    if injector is not None:
        injector.check_point(point)
