"""Error metrics used for model calibration and validation.

The paper evaluates model quality with RMSE (arguing, after Chai & Draxler
2014, that large errors should be penalized more strongly than MAE does), so
RMSE is the default everywhere; MAE and NRMSE are provided for completeness
and for the validation utilities.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EstimationError


def _as_arrays(measured: Sequence[float], simulated: Sequence[float]) -> tuple:
    y_true = np.asarray(measured, dtype=float)
    y_pred = np.asarray(simulated, dtype=float)
    if y_true.shape != y_pred.shape:
        raise EstimationError(
            f"measured and simulated series have different lengths: "
            f"{y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise EstimationError("cannot compute an error metric over empty series")
    return y_true, y_pred


def rmse(measured: Sequence[float], simulated: Sequence[float]) -> float:
    """Root mean square error between measured and simulated series.

    Overflowing residuals (produced by diverging candidate parameter values
    during calibration) yield ``inf`` rather than a runtime warning.
    """
    y_true, y_pred = _as_arrays(measured, simulated)
    with np.errstate(over="ignore", invalid="ignore"):
        value = float(np.sqrt(np.mean((y_true - y_pred) ** 2)))
    return value if np.isfinite(value) else float("inf")


def mae(measured: Sequence[float], simulated: Sequence[float]) -> float:
    """Mean absolute error between measured and simulated series."""
    y_true, y_pred = _as_arrays(measured, simulated)
    return float(np.mean(np.abs(y_true - y_pred)))


def nrmse(measured: Sequence[float], simulated: Sequence[float]) -> float:
    """RMSE normalized by the measured range (dimensionless, in [0, inf))."""
    y_true, y_pred = _as_arrays(measured, simulated)
    span = float(np.max(y_true) - np.min(y_true))
    base = rmse(y_true, y_pred)
    if span == 0.0:
        return base
    return base / span


def l2_distance(series_a: Sequence[float], series_b: Sequence[float]) -> float:
    """Euclidean (L2) distance between two equal-length series.

    This is the similarity measure pgFMU's multi-instance optimization uses
    to decide whether a new instance's measurements are close enough to the
    reference instance for the Local-Only warm start (Algorithm 3).
    """
    a, b = _as_arrays(series_a, series_b)
    return float(np.linalg.norm(a - b))


def relative_l2_dissimilarity(series_a: Sequence[float], series_b: Sequence[float]) -> float:
    """L2 distance normalized by the norm of the reference series.

    Expressed as a fraction (0.2 means the series differ by 20 % in the L2
    sense), matching how the paper reports dataset dissimilarity in Figure 6.
    """
    a, b = _as_arrays(series_a, series_b)
    reference = float(np.linalg.norm(a))
    if reference == 0.0:
        return float(np.linalg.norm(b - a))
    return float(np.linalg.norm(b - a) / reference)
