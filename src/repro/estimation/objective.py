"""Simulation-based calibration objective.

The objective wraps an :class:`~repro.fmi.model.FmuModel` plus a measurement
set and exposes ``objective(theta) -> error``: set the candidate parameter
vector on the model, simulate over the measurement window with the measured
inputs, and compute the (mean) RMSE between simulated and measured
trajectories of the observed variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CancelledError, EstimationError, SolverError, TimeoutError
from repro.estimation.metrics import rmse
from repro.fmi.model import FmuModel
from repro.solvers.retry import RetryPolicy

#: Deadline/cancellation errors must never be swallowed as a penalized
#: candidate: a timed-out calibration aborts, it does not score ``inf``.
_FATAL_ERRORS = (TimeoutError, CancelledError)


@dataclass
class MeasurementSet:
    """Measured time series used for calibration or validation.

    Attributes
    ----------
    time:
        Shared, increasing time grid (hours in the paper's datasets).
    series:
        Mapping of variable name to measured values on ``time``.  Names that
        match model inputs are fed to the simulation; names that match model
        states or outputs are compared against simulated trajectories.
    """

    time: np.ndarray
    series: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        self.time = np.asarray(self.time, dtype=float)
        if self.time.ndim != 1 or self.time.size < 2:
            raise EstimationError("a measurement set needs a 1-D time grid with >= 2 points")
        if np.any(np.diff(self.time) < 0):
            raise EstimationError("measurement time grid must be non-decreasing")
        clean: Dict[str, np.ndarray] = {}
        for name, values in self.series.items():
            arr = np.asarray(values, dtype=float)
            if arr.shape != self.time.shape:
                raise EstimationError(
                    f"measured series {name!r} has length {arr.shape[0]}, "
                    f"expected {self.time.shape[0]}"
                )
            clean[name] = arr
        self.series = clean

    @classmethod
    def from_rows(
        cls, rows: Sequence[Mapping[str, float]], time_column: str = "time"
    ) -> "MeasurementSet":
        """Build a measurement set from dict rows (e.g. a SQL query result)."""
        if not rows:
            raise EstimationError("no measurement rows supplied")
        if time_column not in rows[0]:
            raise EstimationError(
                f"measurement rows have no {time_column!r} column; columns are {list(rows[0])}"
            )
        columns = [c for c in rows[0] if c != time_column]
        time = np.array([float(r[time_column]) for r in rows], dtype=float)
        order = np.argsort(time, kind="stable")
        series = {}
        for column in columns:
            values = []
            for r in rows:
                value = r.get(column)
                values.append(float("nan") if value is None else float(value))
            series[column] = np.asarray(values, dtype=float)[order]
        return cls(time=time[order], series={k: v for k, v in series.items()})

    def variable_names(self) -> List[str]:
        return list(self.series)

    def subset(self, names: Sequence[str]) -> "MeasurementSet":
        """A measurement set restricted to the given series names."""
        return MeasurementSet(
            time=self.time.copy(),
            series={name: self.series[name].copy() for name in names if name in self.series},
        )

    def window(self, start: float, stop: float) -> "MeasurementSet":
        """Restrict the measurement set to ``start <= time <= stop``."""
        mask = (self.time >= start) & (self.time <= stop)
        if mask.sum() < 2:
            raise EstimationError("measurement window contains fewer than 2 samples")
        return MeasurementSet(
            time=self.time[mask],
            series={name: values[mask] for name, values in self.series.items()},
        )

    def split(self, fraction: float) -> Tuple["MeasurementSet", "MeasurementSet"]:
        """Split into (training, validation) sets at the given fraction."""
        if not 0.0 < fraction < 1.0:
            raise EstimationError("split fraction must be strictly between 0 and 1")
        cut = max(2, int(round(self.time.size * fraction)))
        cut = min(cut, self.time.size - 2)
        first = MeasurementSet(
            time=self.time[:cut],
            series={k: v[:cut] for k, v in self.series.items()},
        )
        second = MeasurementSet(
            time=self.time[cut:],
            series={k: v[cut:] for k, v in self.series.items()},
        )
        return first, second


class SimulationObjective:
    """Callable objective ``theta -> error`` for a model/measurement pair.

    Parameters
    ----------
    model:
        The FMU runtime model to calibrate (its current non-estimated
        parameter values are kept).
    measurements:
        Measured input and observed series.
    parameter_names:
        Names of the parameters being estimated; the candidate vector passed
        to :meth:`__call__` follows this order.
    observed_names:
        Which measured series to compare against simulated trajectories.
        Defaults to every measured series that matches a model state or
        output (and is not an input).
    solver / solver_options:
        Forwarded to :meth:`FmuModel.simulate`.  When ``solver`` is ``None``
        the objective uses fixed-step RK4 at the measurement resolution,
        which is accurate for the paper's slow thermal models and an order
        of magnitude cheaper than the adaptive solver - calibration calls
        the objective hundreds of times.
    memo:
        Enable the per-estimation simulation memo cache (on by default).
        Objective values are cached per *exact* candidate vector: GA elitism
        and tournament re-evaluations and SLSQP's repeated probe points pass
        bit-identical vectors, so they skip the re-simulation, while any
        genuinely different candidate - however close - always simulates.
        The measurement grid, observed series and non-estimated model
        configuration are fixed for the lifetime of an objective, so a cache
        entry can never go stale within one estimation; disable with
        ``memo=False`` when mutating the model between calls.
    batch_enabled:
        Evaluate whole candidate populations as one batched ``(pop, d)``
        fleet solve (:meth:`evaluate_population` via
        :meth:`FmuModel.simulate_batch`) instead of one simulation per
        candidate.  Batched values, evaluation counts and cache-hit counts
        are identical to the sequential path; ``False`` forces the
        per-candidate loop (the escape hatch the equivalence corpus and the
        population benchmark flip).  Models that cannot batch (interpreted
        path, non-vectorizable kernels) fall back to the sequential loop
        automatically, as does a batched solve that fails mid-flight.
    retry_policy:
        Optional :class:`~repro.solvers.retry.RetryPolicy` applied when a
        candidate's simulation raises :class:`~repro.errors.SolverError`:
        the remaining rungs of the ladder (tightened numerics, fixed-step
        fallback) are tried before the candidate is penalized with ``inf``.
        Off by default so pinned estimation results are unchanged; typed
        timeout/cancellation errors always propagate, never retry.
    """

    def __init__(
        self,
        model: FmuModel,
        measurements: MeasurementSet,
        parameter_names: Sequence[str],
        observed_names: Optional[Sequence[str]] = None,
        solver: Optional[str] = None,
        solver_options: Optional[dict] = None,
        align_initial_state: bool = True,
        memo: bool = True,
        batch_enabled: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.model = model
        self.measurements = measurements
        self.parameter_names = list(parameter_names)
        if not self.parameter_names:
            raise EstimationError("at least one parameter must be estimated")
        for name in self.parameter_names:
            if name not in model.parameter_names():
                raise EstimationError(
                    f"{name!r} is not a parameter of model {model.model_name!r}"
                )
        input_names = set(model.input_names())
        observable = set(model.state_names()) | set(model.output_names())
        if observed_names is None:
            observed_names = [
                name
                for name in measurements.variable_names()
                if name in observable and name not in input_names
            ]
        self.observed_names = list(observed_names)
        if not self.observed_names:
            raise EstimationError(
                "no measured series matches a model state or output; cannot calibrate"
            )
        for name in self.observed_names:
            if name not in measurements.series:
                raise EstimationError(f"observed series {name!r} is not in the measurements")
        self.input_series = {
            name: (measurements.time, measurements.series[name])
            for name in measurements.variable_names()
            if name in input_names
        }
        if solver is None:
            step = float(np.median(np.diff(measurements.time)))
            self.solver = "rk4"
            self.solver_options = {"step": step, **(solver_options or {})}
        else:
            self.solver = solver
            self.solver_options = dict(solver_options or {})
        # Start simulations from the measured initial conditions of observed
        # states (standard calibration practice: the transient from an
        # arbitrary start value would otherwise dominate the error).
        self.initial_state_values: Dict[str, float] = {}
        if align_initial_state:
            state_names = set(model.state_names())
            for name in self.observed_names:
                if name in state_names:
                    first = measurements.series[name]
                    finite = first[~np.isnan(first)]
                    if finite.size:
                        self.initial_state_values[name] = float(finite[0])
        self.n_evaluations = 0
        self.retry_policy = retry_policy
        self.memo_enabled = bool(memo)
        self.batch_enabled = bool(batch_enabled)
        self.n_cache_hits = 0
        self._memo: Dict[bytes, float] = {}

    # ------------------------------------------------------------------ #
    # Memoization
    # ------------------------------------------------------------------ #
    def _memo_key(self, theta: np.ndarray) -> bytes:
        # Exact bit pattern: any rounding scheme would conflate sufficiently
        # fine probe steps at some parameter scale, silently changing search
        # results; the re-evaluations worth caching are bit-identical anyway.
        return np.ascontiguousarray(theta, dtype=float).tobytes()

    def clear_memo(self) -> None:
        """Drop all cached objective values (keeps the hit counter)."""
        self._memo.clear()

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        theta: Sequence[float],
        solver: Optional[str] = None,
        solver_options: Optional[dict] = None,
    ):
        """Simulate the model with the candidate parameter vector.

        ``solver``/``solver_options`` override the objective's configured
        solver for this one call (the retry ladder's degraded attempts).
        """
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (len(self.parameter_names),):
            raise EstimationError(
                f"candidate vector has shape {theta.shape}, expected ({len(self.parameter_names)},)"
            )
        self.model.set_many(dict(zip(self.parameter_names, theta)))
        if self.initial_state_values:
            self.model.set_many(self.initial_state_values)
        return self.model.simulate(
            inputs=self.input_series,
            start_time=float(self.measurements.time[0]),
            stop_time=float(self.measurements.time[-1]),
            output_times=self.measurements.time,
            solver=self.solver if solver is None else solver,
            solver_options=(
                self.solver_options if solver_options is None else solver_options
            ),
        )

    def __call__(self, theta: Sequence[float]) -> float:
        """Mean RMSE over all observed series for the candidate vector.

        Results are memoized per exact candidate vector (see ``memo``);
        cache hits skip the simulation entirely and do not count towards
        :attr:`n_evaluations`.
        """
        theta_array = np.asarray(theta, dtype=float)
        key = self._memo_key(theta_array) if self.memo_enabled else None
        if key is not None:
            cached = self._memo.get(key)
            if cached is not None:
                self.n_cache_hits += 1
                # Preserve simulate()'s side effect so callers that read the
                # model after an objective call see this candidate's values,
                # exactly as on a miss (only the simulation is skipped).
                if theta_array.shape == (len(self.parameter_names),):
                    self.model.set_many(dict(zip(self.parameter_names, theta_array)))
                    if self.initial_state_values:
                        self.model.set_many(self.initial_state_values)
                return cached
        error = self._evaluate(theta_array)
        if key is not None:
            self._memo[key] = error
        return error

    def _evaluate(self, theta: np.ndarray) -> float:
        self.n_evaluations += 1
        try:
            result = self.simulate(theta)
        except SolverError:
            if self.retry_policy is None:
                # A diverging candidate (e.g. an unstable pole) is penalized,
                # not fatal.
                return float("inf")
            try:
                result = self.retry_policy.run(
                    lambda name, options: self.simulate(
                        theta, solver=name, solver_options=options
                    ),
                    self.solver,
                    self.solver_options,
                    skip_first=True,
                )
            except SolverError:
                return float("inf")
        except _FATAL_ERRORS:
            raise
        except Exception:
            return float("inf")
        return self._score(result)

    def _score(self, result) -> float:
        """Mean RMSE of a simulation result against the observed series."""
        errors = []
        for name in self.observed_names:
            measured = self.measurements.series[name]
            simulated = result[name]
            mask = ~np.isnan(measured)
            if mask.sum() == 0:
                continue
            errors.append(rmse(measured[mask], simulated[mask]))
        if not errors:
            return float("inf")
        return float(np.mean(errors))

    # ------------------------------------------------------------------ #
    # Population evaluation (batched fleet solve)
    # ------------------------------------------------------------------ #
    def population_batchable(self) -> bool:
        """Whether candidate populations can run as one batched fleet solve."""
        system = self.model.ode_system
        if not system.compiled_enabled:
            return False
        kernel = system.kernel
        return kernel is not None and kernel.supports_batch

    def evaluate_population(self, thetas) -> np.ndarray:
        """Score a whole ``(pop, d)`` population of candidate vectors.

        The population's inputs, measurement window and output grid are
        bound once and all cache-missing candidates integrate as a single
        batched fleet solve (:meth:`FmuModel.simulate_batch` over one clone
        per candidate), instead of one simulation per candidate.  Semantics
        match scoring the rows one by one in order:

        * the memo cache is consulted per row before the solve, and a row
          repeating an **earlier row of the same population** (GA elitism
          duplicates) counts as a cache hit - exactly as it would
          sequentially, where the first occurrence simulates and populates
          the cache before the repeat is scored;
        * misses are deduplicated, batched together, and counted in
          :attr:`n_evaluations` once each;
        * with the memo disabled every row simulates, duplicates included,
          so counters stay comparable across configurations;
        * the model is left holding the last row's candidate values, the
          state the sequential loop's ``simulate`` side effect leaves.

        Falls back to the sequential per-candidate loop when
        ``batch_enabled`` is off, when the model cannot batch (interpreted
        path or non-vectorizable kernel), or when the batched solve fails
        mid-flight (the sequential rerun then penalizes the diverging
        candidates with ``inf`` exactly as :meth:`__call__` would).
        """
        thetas = np.asarray(thetas, dtype=float)
        if thetas.ndim != 2 or thetas.shape[1] != len(self.parameter_names):
            raise EstimationError(
                f"population must be a (pop, {len(self.parameter_names)}) "
                f"matrix, got shape {thetas.shape}"
            )
        n_rows = thetas.shape[0]
        if n_rows == 0:
            return np.empty(0)
        if not (self.batch_enabled and self.population_batchable()):
            return np.array([self(theta) for theta in thetas])

        errors = np.empty(n_rows)
        if self.memo_enabled:
            keys = [self._memo_key(theta) for theta in thetas]
            resolved = np.zeros(n_rows, dtype=bool)
            scheduled: Dict[bytes, int] = {}
            miss_rows: List[int] = []
            hits = 0
            for row, key in enumerate(keys):
                cached = self._memo.get(key)
                if cached is not None:
                    errors[row] = cached
                    resolved[row] = True
                    hits += 1
                elif key in scheduled:
                    # Duplicate within this population: resolved from the
                    # memo after the batch fills it.
                    hits += 1
                else:
                    scheduled[key] = row
                    miss_rows.append(row)
            self.n_cache_hits += hits
            if miss_rows:
                miss_errors = self._evaluate_batch(thetas[miss_rows])
                for row, error in zip(miss_rows, miss_errors):
                    errors[row] = error
                    resolved[row] = True
                    self._memo[keys[row]] = float(error)
            for row in np.where(~resolved)[0]:
                errors[row] = self._memo[keys[row]]
        else:
            errors[:] = self._evaluate_batch(thetas)

        # Preserve the sequential loop's side effect: the model reflects the
        # last candidate that was scored (see ``simulate``/``__call__``).
        self.model.set_many(dict(zip(self.parameter_names, thetas[-1])))
        if self.initial_state_values:
            self.model.set_many(self.initial_state_values)
        return errors

    def _evaluate_batch(self, thetas: np.ndarray) -> np.ndarray:
        """Simulate the given candidates as one fleet and score each row.

        A batched solve aborts wholesale when *any* row diverges (the solver
        raises before the stable rows finish), and a GA population searching
        a wide box routinely contains such candidates - so a failed fleet is
        **bisected** rather than rerun row by row: stable halves still solve
        batched, and only the genuinely diverging candidates degrade to a
        single sequential evaluation (which penalizes them with ``inf``,
        exactly as the sequential path would).  Per-row results are
        independent of the batch they solve in, so the split does not change
        any candidate's score.
        """
        if len(thetas) == 1:
            return np.array([self._evaluate(thetas[0])])
        try:
            results = self._simulate_population(thetas)
        except _FATAL_ERRORS:
            raise
        except Exception:
            mid = len(thetas) // 2
            return np.concatenate(
                [self._evaluate_batch(thetas[:mid]), self._evaluate_batch(thetas[mid:])]
            )
        self.n_evaluations += len(thetas)
        return np.array([self._score(result) for result in results])

    def _simulate_population(self, thetas: np.ndarray):
        """One batched fleet solve over a clone of the model per candidate."""
        candidates = []
        for theta in thetas:
            candidate = self.model.clone()
            candidate.set_many(dict(zip(self.parameter_names, theta)))
            if self.initial_state_values:
                candidate.set_many(self.initial_state_values)
            candidates.append(candidate)
        return FmuModel.simulate_batch(
            candidates,
            inputs=self.input_series,
            start_time=float(self.measurements.time[0]),
            stop_time=float(self.measurements.time[-1]),
            output_times=self.measurements.time,
            solver=self.solver,
            solver_options=self.solver_options,
            # A diverging candidate should cost one aborted batch, not a
            # sequential rerun of the whole fleet; _evaluate_batch bisects.
            sequential_fallback=False,
        )

    def error_for(self, parameter_values: Mapping[str, float]) -> float:
        """Convenience: evaluate the objective for named parameter values."""
        theta = [parameter_values[name] for name in self.parameter_names]
        return self(theta)
