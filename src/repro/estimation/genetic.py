"""Global Search: a real-coded genetic algorithm.

This is the ``G`` stage of the ModestPy-style estimation workflow.  It is a
standard real-coded GA with tournament selection, blend crossover, Gaussian
mutation and elitism, operating inside box constraints.  The GA is the
expensive stage (population x generations objective evaluations, each of
which is a full model simulation), which is exactly the cost structure the
pgFMU multi-instance optimization exploits by skipping it for warm-started
instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError

Bounds = Sequence[Tuple[float, float]]


@dataclass
class GaResult:
    """Outcome of a GA run."""

    best_parameters: np.ndarray
    best_error: float
    n_evaluations: int
    n_generations: int
    history: List[float] = field(default_factory=list)


class GeneticAlgorithm:
    """Real-coded genetic algorithm with box constraints.

    Parameters
    ----------
    bounds:
        ``(low, high)`` pair per parameter; the search never leaves the box.
    population_size / generations:
        GA budget.  The defaults are sized for the small thermal models of
        the paper; benchmarks scale them up or down explicitly.
    tournament_size, crossover_rate, mutation_rate, mutation_scale:
        Standard GA operator settings.
    elitism:
        Number of best individuals copied unchanged into the next generation.
    patience:
        Stop early when the best error has not improved for this many
        generations (None disables early stopping).
    seed:
        Seed for the internal random generator; runs are fully deterministic
        for a fixed seed, matching the paper's "fixed randomly derived seed".
    """

    def __init__(
        self,
        bounds: Bounds,
        population_size: int = 24,
        generations: int = 20,
        tournament_size: int = 3,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.25,
        mutation_scale: float = 0.1,
        elitism: int = 2,
        patience: Optional[int] = 8,
        seed: Optional[int] = 1,
    ):
        self.bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        if not self.bounds:
            raise EstimationError("GA requires at least one parameter bound")
        for lo, hi in self.bounds:
            if not (hi > lo):
                raise EstimationError(f"invalid bound ({lo}, {hi}): upper must exceed lower")
        if population_size < 4:
            raise EstimationError("population_size must be at least 4")
        if generations < 1:
            raise EstimationError("generations must be at least 1")
        self.population_size = int(population_size)
        self.generations = int(generations)
        self.tournament_size = max(2, int(tournament_size))
        self.crossover_rate = float(crossover_rate)
        self.mutation_rate = float(mutation_rate)
        self.mutation_scale = float(mutation_scale)
        self.elitism = max(0, int(elitism))
        self.patience = patience
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #
    def _lows_highs(self) -> Tuple[np.ndarray, np.ndarray]:
        lows = np.array([lo for lo, _ in self.bounds])
        highs = np.array([hi for _, hi in self.bounds])
        return lows, highs

    def _initial_population(self, initial_guess: Optional[np.ndarray]) -> np.ndarray:
        lows, highs = self._lows_highs()
        population = self.rng.uniform(lows, highs, size=(self.population_size, len(self.bounds)))
        if initial_guess is not None:
            population[0] = np.clip(initial_guess, lows, highs)
        return population

    def _tournament(self, errors: np.ndarray) -> int:
        candidates = self.rng.integers(0, len(errors), size=self.tournament_size)
        return int(candidates[np.argmin(errors[candidates])])

    def _crossover(self, parent_a: np.ndarray, parent_b: np.ndarray) -> np.ndarray:
        if self.rng.random() > self.crossover_rate:
            return parent_a.copy()
        # Blend (BLX-alpha) crossover.
        alpha = 0.4
        low = np.minimum(parent_a, parent_b)
        high = np.maximum(parent_a, parent_b)
        span = high - low
        return self.rng.uniform(low - alpha * span, high + alpha * span)

    def _mutate(self, individual: np.ndarray) -> np.ndarray:
        lows, highs = self._lows_highs()
        span = highs - lows
        mask = self.rng.random(len(individual)) < self.mutation_rate
        noise = self.rng.normal(0.0, self.mutation_scale, size=len(individual)) * span
        mutated = np.where(mask, individual + noise, individual)
        return np.clip(mutated, lows, highs)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        objective: Callable[[np.ndarray], float],
        initial_guess: Optional[Sequence[float]] = None,
        population_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> GaResult:
        """Minimize ``objective`` within the bounds and return the best point.

        Parameters
        ----------
        objective:
            Per-candidate objective ``theta -> error``.
        initial_guess:
            Optional starting point copied into the initial population.
        population_objective:
            Optional population scorer ``(pop, d) matrix -> (pop,) errors``
            used to evaluate each generation in one call (e.g.
            :meth:`SimulationObjective.evaluate_population`, which runs all
            candidates as one batched fleet solve).  The GA draws all of a
            generation's random numbers *before* scoring it, so swapping the
            scorer never changes the RNG stream: seeded runs are
            bit-identical whether candidates are scored one by one or as a
            population.
        """
        lows, highs = self._lows_highs()
        guess = None if initial_guess is None else np.asarray(initial_guess, dtype=float)

        if population_objective is not None:
            def score(population: np.ndarray) -> np.ndarray:
                return np.asarray(population_objective(population), dtype=float)
        else:
            def score(population: np.ndarray) -> np.ndarray:
                return np.array([objective(ind) for ind in population])

        population = self._initial_population(guess)
        errors = score(population)
        n_evaluations = len(population)
        history: List[float] = [float(np.min(errors))]

        best_idx = int(np.argmin(errors))
        best = population[best_idx].copy()
        best_error = float(errors[best_idx])
        stall = 0
        generation = 0

        for generation in range(1, self.generations + 1):
            order = np.argsort(errors)
            next_population = [population[i].copy() for i in order[: self.elitism]]
            while len(next_population) < self.population_size:
                parent_a = population[self._tournament(errors)]
                parent_b = population[self._tournament(errors)]
                child = self._mutate(self._crossover(parent_a, parent_b))
                next_population.append(np.clip(child, lows, highs))
            population = np.vstack(next_population)
            errors = score(population)
            n_evaluations += len(population)

            generation_best = int(np.argmin(errors))
            if errors[generation_best] < best_error - 1e-12:
                best_error = float(errors[generation_best])
                best = population[generation_best].copy()
                stall = 0
            else:
                stall += 1
            history.append(best_error)
            if self.patience is not None and stall >= self.patience:
                break

        return GaResult(
            best_parameters=best,
            best_error=best_error,
            n_evaluations=n_evaluations,
            n_generations=generation,
            history=history,
        )
