"""Parameter estimation for FMU models (ModestPy substrate).

The original pgFMU calls ModestPy, which combines a Global Search (a genetic
algorithm, ``G``) with a gradient-based Local Search (``LaG`` when it follows
the global stage, ``LO`` when it runs alone from user-supplied initial
values).  This subpackage implements the same two-stage architecture:

* :mod:`repro.estimation.metrics` - RMSE / MAE / NRMSE error metrics.
* :mod:`repro.estimation.objective` - a simulation-based objective comparing
  model trajectories against measured series.
* :mod:`repro.estimation.genetic` - the Global Search genetic algorithm.
* :mod:`repro.estimation.local` - the Local Search (SLSQP via scipy with a
  coordinate-descent fallback).
* :mod:`repro.estimation.estimator` - the :class:`Estimation` workflow tying
  the stages together, exposing the ``G+LaG`` and ``LO`` modes that pgFMU's
  multi-instance optimization switches between.

The cost asymmetry that drives the paper's Figure 6 and Figure 7 (the global
stage dominates runtime, the local stage is cheap) is inherent to this
architecture: the GA evaluates ``population x generations`` simulations while
the local stage needs only a few dozen.
"""

from repro.estimation.estimator import Estimation, EstimationResult
from repro.estimation.genetic import GeneticAlgorithm, GaResult
from repro.estimation.local import LocalSearch, LocalSearchResult
from repro.estimation.metrics import mae, nrmse, rmse
from repro.estimation.objective import MeasurementSet, SimulationObjective

__all__ = [
    "Estimation",
    "EstimationResult",
    "GeneticAlgorithm",
    "GaResult",
    "LocalSearch",
    "LocalSearchResult",
    "MeasurementSet",
    "SimulationObjective",
    "rmse",
    "mae",
    "nrmse",
]
