"""The Estimation workflow: Global + Local search (ModestPy-style).

:class:`Estimation` combines the GA global stage with the gradient-based
local stage, exposing the three modes pgFMU's parameter estimation uses:

* ``"global+local"`` (G+LaG): the default for a fresh instance - the GA
  narrows the search space, the local stage fine-tunes the optimum.
* ``"local"`` (LO): local search only, from supplied initial values - used
  by the multi-instance optimization when a similar instance has already
  been calibrated and its optimum is a good warm start.
* ``"global"`` (G): global only, mainly for ablation benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.estimation.genetic import GeneticAlgorithm
from repro.estimation.local import LocalSearch
from repro.estimation.objective import MeasurementSet, SimulationObjective
from repro.fmi.model import FmuModel

Bounds = Dict[str, Tuple[float, float]]

#: Fallback half-width used when a parameter has no declared min/max bound.
_DEFAULT_BOUND_SPAN = 10.0


@dataclass
class EstimationResult:
    """Outcome of a calibration run."""

    parameters: Dict[str, float]
    error: float
    method: str
    n_evaluations: int
    global_time: float = 0.0
    local_time: float = 0.0
    validation_error: Optional[float] = None
    history: List[float] = field(default_factory=list)
    #: Objective calls served from the simulation memo cache (no re-simulation).
    n_cache_hits: int = 0

    @property
    def total_time(self) -> float:
        return self.global_time + self.local_time


class Estimation:
    """Parameter estimation for one FMU model instance.

    Parameters
    ----------
    model:
        The FMU runtime model to calibrate.
    measurements:
        Training measurements (inputs + observed states/outputs).
    parameters:
        Names of the parameters to estimate.  Defaults to every declared
        model parameter.
    bounds:
        Optional per-parameter ``(low, high)`` overrides.  Defaults come from
        the FMU's declared min/max attributes, falling back to a symmetric
        span around the start value.
    ga_options / local_options:
        Constructor options for the two stages (population size, tolerance,
        ...).  Benchmarks use these to scale the experiment budget.
    seed:
        Seed for the GA stage.
    batch_enabled:
        Score whole GA generations and local-search gradient stencils as
        one batched ``(pop, d)`` fleet solve
        (:meth:`SimulationObjective.evaluate_population`) instead of one
        simulation per candidate.  Results are identical either way for a
        fixed seed; ``False`` forces the sequential per-candidate loop.
        Non-batchable models (interpreted path, non-vectorizable kernels)
        fall back to it automatically.
    retry_policy:
        Optional :class:`~repro.solvers.retry.RetryPolicy` forwarded to the
        objective: diverging candidates walk the degradation ladder before
        being penalized.  Off by default (pinned results unchanged).
    """

    def __init__(
        self,
        model: FmuModel,
        measurements: MeasurementSet,
        parameters: Optional[Sequence[str]] = None,
        bounds: Optional[Bounds] = None,
        ga_options: Optional[dict] = None,
        local_options: Optional[dict] = None,
        solver: Optional[str] = None,
        solver_options: Optional[dict] = None,
        seed: Optional[int] = 1,
        memo: bool = True,
        batch_enabled: bool = True,
        retry_policy=None,
    ):
        self.model = model
        self.measurements = measurements
        self.parameter_names = list(parameters) if parameters else model.parameter_names()
        if not self.parameter_names:
            raise EstimationError(
                f"model {model.model_name!r} declares no estimable parameters"
            )
        self.bounds = self._resolve_bounds(bounds or {})
        self.ga_options = dict(ga_options or {})
        self.local_options = dict(local_options or {})
        self.seed = seed
        self.objective = SimulationObjective(
            model=model,
            measurements=measurements,
            parameter_names=self.parameter_names,
            solver=solver,
            solver_options=solver_options,
            memo=memo,
            batch_enabled=batch_enabled,
            retry_policy=retry_policy,
        )

    # ------------------------------------------------------------------ #
    # Bounds
    # ------------------------------------------------------------------ #
    def _resolve_bounds(self, overrides: Bounds) -> List[Tuple[float, float]]:
        resolved: List[Tuple[float, float]] = []
        for name in self.parameter_names:
            if name in overrides:
                low, high = overrides[name]
            else:
                variable = self.model.model_description.variable(name)
                low = variable.minimum
                high = variable.maximum
                if low is None or high is None or not (high > low):
                    start = float(variable.start) if variable.start is not None else 0.0
                    span = max(abs(start), 1.0) * _DEFAULT_BOUND_SPAN
                    low = start - span if low is None else low
                    high = start + span if high is None else high
            if not (high > low):
                raise EstimationError(
                    f"parameter {name!r}: invalid bounds ({low}, {high})"
                )
            resolved.append((float(low), float(high)))
        return resolved

    def bound_map(self) -> Bounds:
        """Bounds keyed by parameter name (useful for reporting)."""
        return dict(zip(self.parameter_names, self.bounds))

    # ------------------------------------------------------------------ #
    # Estimation modes
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        method: str = "global+local",
        initial_values: Optional[Mapping[str, float]] = None,
    ) -> EstimationResult:
        """Run calibration and apply the optimum to the model.

        Parameters
        ----------
        method:
            ``"global+local"`` (G+LaG), ``"local"`` (LO) or ``"global"`` (G).
        initial_values:
            Starting point for the local-only mode (typically the optimum of
            a previously calibrated, similar instance).  Also used to seed
            the GA population when provided for the global modes.
        """
        method = method.lower()
        if method not in ("global+local", "local", "global"):
            raise EstimationError(f"unknown estimation method {method!r}")

        guess = None
        if initial_values is not None:
            guess = np.array(
                [float(initial_values[name]) for name in self.parameter_names], dtype=float
            )

        history: List[float] = []
        global_time = 0.0
        local_time = 0.0
        n_evaluations = 0
        cache_hits_before = self.objective.n_cache_hits

        if method in ("global+local", "global"):
            ga = GeneticAlgorithm(self.bounds, seed=self.seed, **self.ga_options)
            started = time.perf_counter()
            # Each generation scores as one batched fleet solve; the scorer
            # itself falls back to the sequential per-candidate loop when
            # batching is disabled or the model cannot batch.
            ga_result = ga.run(
                self.objective,
                initial_guess=guess,
                population_objective=self.objective.evaluate_population,
            )
            global_time = time.perf_counter() - started
            n_evaluations += ga_result.n_evaluations
            history.extend(ga_result.history)
            best = ga_result.best_parameters
            best_error = ga_result.best_error
        else:
            if guess is None:
                # LO without a warm start begins from the model's current values.
                guess = np.array(
                    [self.model.get(name) for name in self.parameter_names], dtype=float
                )
            best = guess
            best_error = float("inf")

        if method in ("global+local", "local"):
            local = LocalSearch(self.bounds, **self.local_options)
            started = time.perf_counter()
            local_result = local.run(
                self.objective,
                best,
                population_objective=self.objective.evaluate_population,
            )
            local_time = time.perf_counter() - started
            n_evaluations += local_result.n_evaluations
            history.extend(local_result.history)
            if local_result.best_error <= best_error:
                best = local_result.best_parameters
                best_error = local_result.best_error

        parameters = {
            name: float(value) for name, value in zip(self.parameter_names, best)
        }
        # Leave the model at the calibrated optimum, as ModestPy users do by
        # writing the estimates back with PyFMI's set().
        self.model.set_many(parameters)
        final_error = self.objective(best)

        return EstimationResult(
            parameters=parameters,
            error=float(final_error),
            method=method,
            n_evaluations=n_evaluations,
            global_time=global_time,
            local_time=local_time,
            history=history,
            # Per-call delta: the objective's counter spans the Estimation's
            # lifetime, and n_evaluations here is also per call.
            n_cache_hits=self.objective.n_cache_hits - cache_hits_before,
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(
        self,
        parameters: Mapping[str, float],
        measurements: Optional[MeasurementSet] = None,
    ) -> float:
        """RMSE of the model under ``parameters`` against a validation set."""
        validation_set = measurements if measurements is not None else self.measurements
        objective = SimulationObjective(
            model=self.model,
            measurements=validation_set,
            parameter_names=self.parameter_names,
            solver=self.objective.solver,
            solver_options=self.objective.solver_options,
        )
        theta = [float(parameters[name]) for name in self.parameter_names]
        return float(objective(theta))
