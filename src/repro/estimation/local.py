"""Local Search: gradient-based refinement inside box constraints.

This is the ``LaG`` / ``LO`` stage of the estimation workflow.  The primary
implementation delegates to scipy's SLSQP (the paper's configuration uses
sequential quadratic programming for the local stage); a derivative-free
coordinate-descent pass is used as a fallback when SLSQP fails or when the
objective is too noisy for finite-difference gradients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.errors import EstimationError

Bounds = Sequence[Tuple[float, float]]


@dataclass
class LocalSearchResult:
    """Outcome of a local search run."""

    best_parameters: np.ndarray
    best_error: float
    n_evaluations: int
    converged: bool
    method: str
    history: List[float] = field(default_factory=list)


class LocalSearch:
    """Bounded local minimization starting from a given point.

    Parameters
    ----------
    bounds:
        ``(low, high)`` box per parameter.
    method:
        ``"slsqp"`` (default) or ``"coordinate"`` to force the derivative-free
        fallback.
    max_iterations:
        Iteration budget for the underlying optimizer.
    tolerance:
        Convergence tolerance on the objective.
    """

    def __init__(
        self,
        bounds: Bounds,
        method: str = "slsqp",
        max_iterations: int = 60,
        tolerance: float = 1e-8,
    ):
        self.bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        if not self.bounds:
            raise EstimationError("local search requires at least one parameter bound")
        for lo, hi in self.bounds:
            if not (hi > lo):
                raise EstimationError(f"invalid bound ({lo}, {hi}): upper must exceed lower")
        if method not in ("slsqp", "coordinate"):
            raise EstimationError(f"unknown local search method {method!r}")
        self.method = method
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        objective: Callable[[np.ndarray], float],
        initial_guess: Sequence[float],
    ) -> LocalSearchResult:
        """Minimize ``objective`` starting at ``initial_guess``."""
        raw = np.atleast_1d(np.asarray(initial_guess, dtype=float))
        if raw.shape != (len(self.bounds),):
            raise EstimationError(
                f"initial guess has shape {raw.shape}, expected ({len(self.bounds)},)"
            )
        x0 = self._clip(raw)
        if self.method == "slsqp":
            result = self._run_slsqp(objective, x0)
            if result is not None:
                return result
        return self._run_coordinate(objective, x0)

    # ------------------------------------------------------------------ #
    # SLSQP
    # ------------------------------------------------------------------ #
    def _run_slsqp(
        self, objective: Callable[[np.ndarray], float], x0: np.ndarray
    ) -> Optional[LocalSearchResult]:
        evaluations = 0
        history: List[float] = []

        def wrapped(theta: np.ndarray) -> float:
            nonlocal evaluations
            evaluations += 1
            value = float(objective(theta))
            if not np.isfinite(value):
                value = 1e12
            history.append(value)
            return value

        try:
            outcome = optimize.minimize(
                wrapped,
                x0,
                method="SLSQP",
                bounds=self.bounds,
                options={"maxiter": self.max_iterations, "ftol": self.tolerance},
            )
        except Exception:
            return None
        if not np.isfinite(outcome.fun):
            return None
        best = self._clip(np.asarray(outcome.x, dtype=float))
        best_error = float(objective(best))
        evaluations += 1
        return LocalSearchResult(
            best_parameters=best,
            best_error=best_error,
            n_evaluations=evaluations,
            converged=bool(outcome.success),
            method="slsqp",
            history=history,
        )

    # ------------------------------------------------------------------ #
    # Coordinate descent fallback
    # ------------------------------------------------------------------ #
    def _run_coordinate(
        self, objective: Callable[[np.ndarray], float], x0: np.ndarray
    ) -> LocalSearchResult:
        lows = np.array([lo for lo, _ in self.bounds])
        highs = np.array([hi for _, hi in self.bounds])
        span = highs - lows
        current = x0.copy()
        current_error = float(objective(current))
        evaluations = 1
        history = [current_error]
        step = 0.1 * span

        for _ in range(self.max_iterations):
            improved = False
            for i in range(len(current)):
                for direction in (+1.0, -1.0):
                    candidate = current.copy()
                    candidate[i] = np.clip(candidate[i] + direction * step[i], lows[i], highs[i])
                    error = float(objective(candidate))
                    evaluations += 1
                    if error < current_error - self.tolerance:
                        current, current_error = candidate, error
                        history.append(current_error)
                        improved = True
            if not improved:
                step = step / 2.0
                if np.all(step < 1e-9 * np.maximum(span, 1.0)):
                    break
        return LocalSearchResult(
            best_parameters=current,
            best_error=current_error,
            n_evaluations=evaluations,
            converged=True,
            method="coordinate",
            history=history,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _clip(self, theta: np.ndarray) -> np.ndarray:
        lows = np.array([lo for lo, _ in self.bounds])
        highs = np.array([hi for _, hi in self.bounds])
        return np.clip(theta, lows, highs)
