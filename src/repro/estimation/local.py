"""Local Search: gradient-based refinement inside box constraints.

This is the ``LaG`` / ``LO`` stage of the estimation workflow.  The primary
implementation delegates to scipy's SLSQP (the paper's configuration uses
sequential quadratic programming for the local stage); a derivative-free
coordinate-descent pass is used as a fallback when SLSQP fails or when the
objective is too noisy for finite-difference gradients.

SLSQP's gradients come from an explicit central-difference stencil built
here (rather than scipy's internal forward differences): all ``2d + 1``
stencil points - the center plus both perturbations per coordinate - are
scored through one call, which a population-capable objective
(:meth:`SimulationObjective.evaluate_population`) runs as a single batched
fleet solve instead of ``2d + 1`` sequential simulations.  The stencil is
identical with and without a population scorer, so both paths visit exactly
the same candidates and return bit-identical optima.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.errors import EstimationError

Bounds = Sequence[Tuple[float, float]]

#: Relative step of the central-difference stencil (the classic eps**(1/3)
#: balance between truncation and rounding error for central differences).
_FD_RELATIVE_STEP = float(np.cbrt(np.finfo(float).eps))


@dataclass
class LocalSearchResult:
    """Outcome of a local search run."""

    best_parameters: np.ndarray
    best_error: float
    n_evaluations: int
    converged: bool
    method: str
    history: List[float] = field(default_factory=list)


class LocalSearch:
    """Bounded local minimization starting from a given point.

    Parameters
    ----------
    bounds:
        ``(low, high)`` box per parameter.
    method:
        ``"slsqp"`` (default) or ``"coordinate"`` to force the derivative-free
        fallback.
    max_iterations:
        Iteration budget for the underlying optimizer.
    tolerance:
        Convergence tolerance on the objective.
    """

    def __init__(
        self,
        bounds: Bounds,
        method: str = "slsqp",
        max_iterations: int = 60,
        tolerance: float = 1e-8,
    ):
        self.bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        if not self.bounds:
            raise EstimationError("local search requires at least one parameter bound")
        for lo, hi in self.bounds:
            if not (hi > lo):
                raise EstimationError(f"invalid bound ({lo}, {hi}): upper must exceed lower")
        if method not in ("slsqp", "coordinate"):
            raise EstimationError(f"unknown local search method {method!r}")
        self.method = method
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        objective: Callable[[np.ndarray], float],
        initial_guess: Sequence[float],
        population_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> LocalSearchResult:
        """Minimize ``objective`` starting at ``initial_guess``.

        ``population_objective`` (a ``(pop, d) matrix -> (pop,) errors``
        scorer) is used, when given, to evaluate each SLSQP gradient's whole
        finite-difference stencil in one call; the visited candidates - and
        therefore the result - are identical either way.
        """
        raw = np.atleast_1d(np.asarray(initial_guess, dtype=float))
        if raw.shape != (len(self.bounds),):
            raise EstimationError(
                f"initial guess has shape {raw.shape}, expected ({len(self.bounds)},)"
            )
        x0 = self._clip(raw)
        if self.method == "slsqp":
            result = self._run_slsqp(objective, x0, population_objective)
            if result is not None:
                return result
        return self._run_coordinate(objective, x0)

    # ------------------------------------------------------------------ #
    # SLSQP
    # ------------------------------------------------------------------ #
    def _fd_stencil(self, theta: np.ndarray) -> np.ndarray:
        """The ``2d + 1`` point central-difference stencil around ``theta``.

        Row 0 is ``theta`` itself (its value is almost always a memo hit:
        the optimizer scores the objective at ``theta`` right before asking
        for its gradient); rows ``1 + 2i`` / ``2 + 2i`` are
        ``theta ± h_i e_i`` **clipped to the bounds** - the objective is
        never probed outside the box (scipy's internal differences never
        leave it either, and out-of-box candidates may be unsimulatable).
        At a bound the clipped point coincides with ``theta``, so the
        difference quotient degrades to a one-sided difference whose inner
        value is exactly row 0's (a memo/dedup hit, not an extra solve).
        """
        d = theta.shape[0]
        lows = np.array([lo for lo, _ in self.bounds])
        highs = np.array([hi for _, hi in self.bounds])
        steps = _FD_RELATIVE_STEP * np.maximum(1.0, np.abs(theta))
        stencil = np.repeat(theta[None, :], 2 * d + 1, axis=0)
        for i in range(d):
            stencil[1 + 2 * i, i] = min(theta[i] + steps[i], highs[i])
            stencil[2 + 2 * i, i] = max(theta[i] - steps[i], lows[i])
        return stencil

    def _run_slsqp(
        self,
        objective: Callable[[np.ndarray], float],
        x0: np.ndarray,
        population_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> Optional[LocalSearchResult]:
        evaluations = 0
        history: List[float] = []

        def evaluate_points(points: np.ndarray) -> np.ndarray:
            nonlocal evaluations
            evaluations += len(points)
            if population_objective is not None:
                return np.asarray(population_objective(points), dtype=float)
            return np.array([float(objective(point)) for point in points])

        def wrapped(theta: np.ndarray) -> float:
            nonlocal evaluations
            evaluations += 1
            value = float(objective(theta))
            if not np.isfinite(value):
                value = 1e12
            history.append(value)
            return value

        def gradient(theta: np.ndarray) -> np.ndarray:
            theta = np.asarray(theta, dtype=float)
            stencil = self._fd_stencil(theta)
            values = evaluate_points(stencil)
            values = np.where(np.isfinite(values), values, 1e12)
            d = theta.shape[0]
            grad = np.empty(d)
            for i in range(d):
                plus, minus = stencil[1 + 2 * i, i], stencil[2 + 2 * i, i]
                span = plus - minus
                # span == 0 only if the bound box is narrower than the
                # stencil step in this coordinate; a flat gradient there is
                # the only consistent answer.
                grad[i] = (values[1 + 2 * i] - values[2 + 2 * i]) / span if span else 0.0
            return grad

        try:
            outcome = optimize.minimize(
                wrapped,
                x0,
                jac=gradient,
                method="SLSQP",
                bounds=self.bounds,
                options={"maxiter": self.max_iterations, "ftol": self.tolerance},
            )
        except Exception:
            return None
        if not np.isfinite(outcome.fun):
            return None
        best = self._clip(np.asarray(outcome.x, dtype=float))
        best_error = float(objective(best))
        evaluations += 1
        return LocalSearchResult(
            best_parameters=best,
            best_error=best_error,
            n_evaluations=evaluations,
            converged=bool(outcome.success),
            method="slsqp",
            history=history,
        )

    # ------------------------------------------------------------------ #
    # Coordinate descent fallback
    # ------------------------------------------------------------------ #
    def _run_coordinate(
        self, objective: Callable[[np.ndarray], float], x0: np.ndarray
    ) -> LocalSearchResult:
        lows = np.array([lo for lo, _ in self.bounds])
        highs = np.array([hi for _, hi in self.bounds])
        span = highs - lows
        current = x0.copy()
        current_error = float(objective(current))
        evaluations = 1
        history = [current_error]
        step = 0.1 * span

        for _ in range(self.max_iterations):
            improved = False
            for i in range(len(current)):
                for direction in (+1.0, -1.0):
                    candidate = current.copy()
                    candidate[i] = np.clip(candidate[i] + direction * step[i], lows[i], highs[i])
                    error = float(objective(candidate))
                    evaluations += 1
                    if error < current_error - self.tolerance:
                        current, current_error = candidate, error
                        history.append(current_error)
                        improved = True
            if not improved:
                step = step / 2.0
                if np.all(step < 1e-9 * np.maximum(span, 1.0)):
                    break
        return LocalSearchResult(
            best_parameters=current,
            best_error=current_error,
            n_evaluations=evaluations,
            converged=True,
            method="coordinate",
            history=history,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _clip(self, theta: np.ndarray) -> np.ndarray:
        lows = np.array([lo for lo, _ in self.bounds])
        highs = np.array([hi for _, hi in self.bounds])
        return np.clip(theta, lows, highs)
