"""Heat pump models HP0 and HP1 (and the LTI-SISO running-example form).

The physical picture (Section 2 of the paper): a house with thermal
capacitance ``Cp`` [kWh/degC] and thermal resistance ``R`` [degC/kW] is heated
by a heat pump with rated electrical power ``P`` = 7.8 kW and coefficient of
performance ``eta`` = 2.65 while the outdoor temperature is ``Ta`` = -10 degC.
The indoor temperature ``x`` evolves as

    der(x) = (Ta - x) / (R * Cp) + (P * eta / Cp) * u

where ``u`` in [0, 1] is the heat pump power rating setting.  The electrical
power drawn by the heat pump is ``y = P * u``.

``HP1`` exposes ``u`` as an input; ``HP0`` is the zero-input variant with the
power rating frozen at a constant 1.38 % (the value the paper uses when
calibrating HP0 on the same dataset).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fmi.archive import FmuArchive
from repro.fmi.model_description import DefaultExperiment
from repro.modelica.compiler import compile_model

#: Rated electrical power of the heat pump [kW].
HP_RATED_POWER = 7.8
#: Coefficient of performance of the heat pump.
HP_COP = 2.65
#: Outdoor temperature of the running example [degC].
HP_OUTDOOR_TEMPERATURE = -10.0
#: Constant power rating used by the zero-input HP0 variant.
HP0_CONSTANT_RATING = 0.0138

#: Ground-truth parameter values used by the data generators; chosen to match
#: the calibrated values the paper reports in Table 7.
HP0_TRUE_PARAMETERS: Dict[str, float] = {"Cp": 1.53, "R": 1.51}
HP1_TRUE_PARAMETERS: Dict[str, float] = {"Cp": 1.49, "R": 1.481}

#: Nominal (uncalibrated) parameter values embedded in the Modelica sources.
HP_NOMINAL_PARAMETERS: Dict[str, float] = {"Cp": 1.5, "R": 1.5}


def hp1_source() -> str:
    """Modelica source of the HP1 model (input ``u``, parameters Cp and R)."""
    return f"""
model HP1 "Heat pump heated house, power rating setting as input"
  parameter Real Cp(min=0.1, max=10) = {HP_NOMINAL_PARAMETERS['Cp']} "thermal capacitance [kWh/degC]";
  parameter Real R(min=0.1, max=10) = {HP_NOMINAL_PARAMETERS['R']} "thermal resistance [degC/kW]";
  constant Real P = {HP_RATED_POWER} "rated electrical power [kW]";
  constant Real eta = {HP_COP} "coefficient of performance";
  constant Real Ta = {HP_OUTDOOR_TEMPERATURE} "outdoor temperature [degC]";
  input Real u(min=0, max=1, start=0) "heat pump power rating setting";
  output Real y "heat pump power consumption [kW]";
  Real x(start=20.0, min=-30, max=60) "indoor temperature [degC]";
equation
  der(x) = (Ta - x) / (R * Cp) + (P * eta / Cp) * u;
  y = P * u;
end HP1;
"""


def hp0_source() -> str:
    """Modelica source of the HP0 model (no inputs, constant power rating)."""
    return f"""
model HP0 "Heat pump heated house, constant power rating (no inputs)"
  parameter Real Cp(min=0.1, max=10) = {HP_NOMINAL_PARAMETERS['Cp']} "thermal capacitance [kWh/degC]";
  parameter Real R(min=0.1, max=10) = {HP_NOMINAL_PARAMETERS['R']} "thermal resistance [degC/kW]";
  constant Real P = {HP_RATED_POWER} "rated electrical power [kW]";
  constant Real eta = {HP_COP} "coefficient of performance";
  constant Real Ta = {HP_OUTDOOR_TEMPERATURE} "outdoor temperature [degC]";
  constant Real u0 = {HP0_CONSTANT_RATING} "constant power rating setting";
  output Real y "heat pump power consumption [kW]";
  Real x(start=20.0, min=-30, max=60) "indoor temperature [degC]";
equation
  der(x) = (Ta - x) / (R * Cp) + (P * eta / Cp) * u0;
  y = P * u0;
end HP0;
"""


def heat_pump_abcde_source() -> str:
    """Modelica source of the LTI-SISO heat pump of the paper's Figure 2.

    Parameters ``A``..``E`` correspond to A = -1/(R*Cp), B = P*eta/Cp, C = P,
    D = 0, E = Ta/(R*Cp) with the nominal physical values.
    """
    return """
model heatpump "LTI SISO heat pump model (Figure 2 of the paper)"
  parameter Real A(min=-10, max=10) = -0.4444 "-1/(R*Cp)";
  parameter Real B(min=-20, max=20) = 13.78 "P*eta/Cp";
  parameter Real C = 7.8 "rated power P";
  parameter Real D = 0 "feed-through";
  parameter Real E(min=-20, max=20) = -4.4444 "Ta/(R*Cp)";
  input Real u(min=0, max=1, start=0) "heat pump power rating setting";
  output Real y "heat pump power consumption";
  Real x(start=20.0) "indoor temperature [degC]";
equation
  der(x) = A * x + B * u + E;
  y = C * x + D * u;
end heatpump;
"""


def _hourly_experiment(hours: float = 672.0) -> DefaultExperiment:
    """Default experiment covering four weeks of hourly data."""
    return DefaultExperiment(start_time=0.0, stop_time=hours, tolerance=1e-6, step_size=1.0)


def build_hp1_archive(
    true_parameters: Optional[Dict[str, float]] = None,
    default_experiment: Optional[DefaultExperiment] = None,
) -> FmuArchive:
    """Compile HP1 into an FMU archive, optionally with given parameter values."""
    archive = compile_model(
        hp1_source(), default_experiment=default_experiment or _hourly_experiment()
    )
    if true_parameters:
        _apply_parameters(archive, true_parameters)
    return archive


def build_hp0_archive(
    true_parameters: Optional[Dict[str, float]] = None,
    default_experiment: Optional[DefaultExperiment] = None,
) -> FmuArchive:
    """Compile HP0 into an FMU archive, optionally with given parameter values."""
    archive = compile_model(
        hp0_source(), default_experiment=default_experiment or _hourly_experiment()
    )
    if true_parameters:
        _apply_parameters(archive, true_parameters)
    return archive


def _apply_parameters(archive: FmuArchive, parameters: Dict[str, float]) -> None:
    """Overwrite parameter start values inside an archive (ground truth models)."""
    for name, value in parameters.items():
        variable = archive.model_description.variable(name)
        variable.start = float(value)
        archive.ode_system.parameters[name] = float(value)
