"""FMU model library: the three evaluation models of the paper plus helpers.

The paper evaluates pgFMU on three physical models (Table 5):

* ``HP0`` - a heat-pump-heated house with the heat pump held at a constant
  power rate (no inputs); parameters: thermal capacitance ``Cp`` and thermal
  resistance ``R``.
* ``HP1`` - the running-example heat pump model with the power rating
  setting ``u`` in [0, 1] as input; same parameters.
* ``Classroom`` - a thermal network model of a university classroom with
  five inputs (solar radiation, outdoor temperature, occupancy, damper and
  radiator valve positions) and four parameters (``shgc``, ``tmass``,
  ``RExt``, ``occheff``).

In addition, :func:`heat_pump_abcde_source` provides the LTI-SISO form of
Figure 2 (parameters ``A``..``E``) used in the paper's catalogue examples
(Table 3).
"""

from repro.models.heatpump import (
    HP0_TRUE_PARAMETERS,
    HP1_TRUE_PARAMETERS,
    build_hp0_archive,
    build_hp1_archive,
    heat_pump_abcde_source,
    hp0_source,
    hp1_source,
)
from repro.models.classroom import (
    CLASSROOM_TRUE_PARAMETERS,
    build_classroom_archive,
    classroom_source,
)
from repro.models.registry import MODEL_REGISTRY, ModelSpec, get_model_spec

__all__ = [
    "HP0_TRUE_PARAMETERS",
    "HP1_TRUE_PARAMETERS",
    "CLASSROOM_TRUE_PARAMETERS",
    "build_hp0_archive",
    "build_hp1_archive",
    "build_classroom_archive",
    "heat_pump_abcde_source",
    "hp0_source",
    "hp1_source",
    "classroom_source",
    "MODEL_REGISTRY",
    "ModelSpec",
    "get_model_spec",
]
