"""The Classroom thermal network model.

The paper's third evaluation model represents a classroom in an 8500 m2
university building at the SDU Campus Odense.  It is a single-zone thermal
network driven by five measured inputs (solar radiation, outdoor temperature,
number of occupants, ventilation damper position, radiator valve position)
with four estimable parameters:

* ``shgc`` - solar heat gain coefficient,
* ``tmass`` - zone thermal mass factor,
* ``RExt`` - external wall thermal resistance,
* ``occheff`` - occupant heat generation effectiveness.

The indoor temperature ``t`` is the single state (and the model output):

    der(t) = ( (tout - t) / RExt
               + shgc * solrad / 1000
               + occheff * occ * Pocc
               + Pheat * vpos / 100
               - Pvent * dpos / 100 ) / tmass
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fmi.archive import FmuArchive
from repro.fmi.model_description import DefaultExperiment
from repro.modelica.compiler import compile_model

#: Per-occupant heat emission [kW] before the effectiveness factor.
OCCUPANT_HEAT_KW = 0.1
#: Radiator heating power at fully open valve [kW].
RADIATOR_POWER_KW = 5.0
#: Ventilation cooling power at fully open damper [kW].
VENTILATION_POWER_KW = 2.0

#: Ground-truth parameter values (matching the calibrated values of Table 7).
CLASSROOM_TRUE_PARAMETERS: Dict[str, float] = {
    "RExt": 4.0,
    "occheff": 1.478,
    "shgc": 3.246,
    "tmass": 50.0,
}

#: Nominal (uncalibrated) values embedded in the Modelica source.
CLASSROOM_NOMINAL_PARAMETERS: Dict[str, float] = {
    "RExt": 3.0,
    "occheff": 1.0,
    "shgc": 2.0,
    "tmass": 30.0,
}


def classroom_source() -> str:
    """Modelica source of the Classroom thermal network model."""
    nominal = CLASSROOM_NOMINAL_PARAMETERS
    return f"""
model Classroom "Single-zone thermal network of a university classroom"
  parameter Real shgc(min=0.1, max=10) = {nominal['shgc']} "solar heat gain coefficient";
  parameter Real tmass(min=5, max=100) = {nominal['tmass']} "zone thermal mass factor";
  parameter Real RExt(min=0.5, max=20) = {nominal['RExt']} "external wall thermal resistance";
  parameter Real occheff(min=0.1, max=5) = {nominal['occheff']} "occupant heat generation effectiveness";
  constant Real Pocc = {OCCUPANT_HEAT_KW} "heat emission per occupant [kW]";
  constant Real Pheat = {RADIATOR_POWER_KW} "radiator power at open valve [kW]";
  constant Real Pvent = {VENTILATION_POWER_KW} "ventilation power at open damper [kW]";
  input Real solrad(min=0, start=0) "solar radiation [W/m2]";
  input Real tout(start=10) "outdoor temperature [degC]";
  input Real occ(min=0, start=0) "number of occupants";
  input Real dpos(min=0, max=100, start=0) "ventilation damper position [%]";
  input Real vpos(min=0, max=100, start=0) "radiator valve position [%]";
  output Real t(start=21.0, min=-10, max=50) "indoor temperature [degC]";
equation
  der(t) = ((tout - t) / RExt + shgc * solrad / 1000 + occheff * occ * Pocc
            + Pheat * vpos / 100 - Pvent * dpos / 100) / tmass;
end Classroom;
"""


def build_classroom_archive(
    true_parameters: Optional[Dict[str, float]] = None,
    default_experiment: Optional[DefaultExperiment] = None,
) -> FmuArchive:
    """Compile the Classroom model, optionally overriding parameter values."""
    experiment = default_experiment or DefaultExperiment(
        start_time=0.0, stop_time=336.0, tolerance=1e-6, step_size=0.5
    )
    archive = compile_model(classroom_source(), default_experiment=experiment)
    if true_parameters:
        for name, value in true_parameters.items():
            variable = archive.model_description.variable(name)
            variable.start = float(value)
            archive.ode_system.parameters[name] = float(value)
    return archive
