"""A registry mapping model names to builders, true parameters and metadata.

The experiment harness, the benchmarks and the examples all need to iterate
over "the three models of the paper"; the registry is the single place that
knows how to build each model, what its ground-truth parameters are, which
variables are inputs/outputs and which measured series is the calibration
target (Table 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.fmi.archive import FmuArchive
from repro.models.classroom import (
    CLASSROOM_TRUE_PARAMETERS,
    build_classroom_archive,
)
from repro.models.heatpump import (
    HP0_TRUE_PARAMETERS,
    HP1_TRUE_PARAMETERS,
    build_hp0_archive,
    build_hp1_archive,
)


@dataclass
class ModelSpec:
    """Metadata for one evaluation model.

    Attributes
    ----------
    name:
        Model identifier (``"HP0"``, ``"HP1"``, ``"Classroom"``).
    builder:
        Callable producing the FMU archive with *nominal* (uncalibrated)
        parameter values.
    true_builder:
        Callable producing the FMU archive with *ground-truth* parameter
        values (used by the data generators).
    true_parameters:
        Ground-truth parameter values the calibration should recover.
    estimated_parameters:
        Names of the parameters pgFMU estimates for this model.
    inputs / outputs / observed:
        Input variable names, output variable names and the measured series
        compared during calibration (the indoor temperature for all three).
    dataset_description:
        Human-readable description of the measurement dataset (Table 5).
    """

    name: str
    builder: Callable[[], FmuArchive]
    true_builder: Callable[[], FmuArchive]
    true_parameters: Dict[str, float]
    estimated_parameters: List[str]
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    observed: List[str] = field(default_factory=list)
    dataset_description: str = ""


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    "HP0": ModelSpec(
        name="HP0",
        builder=build_hp0_archive,
        true_builder=lambda: build_hp0_archive(true_parameters=HP0_TRUE_PARAMETERS),
        true_parameters=dict(HP0_TRUE_PARAMETERS),
        estimated_parameters=["Cp", "R"],
        inputs=[],
        outputs=["y"],
        observed=["x"],
        dataset_description=(
            "Synthetic equivalent of the NIST Net-Zero Energy Residential Test "
            "Facility dataset with the heat pump held at a constant 1.38% rating"
        ),
    ),
    "HP1": ModelSpec(
        name="HP1",
        builder=build_hp1_archive,
        true_builder=lambda: build_hp1_archive(true_parameters=HP1_TRUE_PARAMETERS),
        true_parameters=dict(HP1_TRUE_PARAMETERS),
        estimated_parameters=["Cp", "R"],
        inputs=["u"],
        outputs=["y"],
        observed=["x"],
        dataset_description=(
            "Synthetic equivalent of the NIST Net-Zero Energy Residential Test "
            "Facility dataset with a thermostat-like heat pump rating profile"
        ),
    ),
    "Classroom": ModelSpec(
        name="Classroom",
        builder=build_classroom_archive,
        true_builder=lambda: build_classroom_archive(
            true_parameters=CLASSROOM_TRUE_PARAMETERS
        ),
        true_parameters=dict(CLASSROOM_TRUE_PARAMETERS),
        estimated_parameters=["RExt", "occheff", "shgc", "tmass"],
        inputs=["solrad", "tout", "occ", "dpos", "vpos"],
        outputs=["t"],
        observed=["t"],
        dataset_description=(
            "Synthetic equivalent of the SDU Campus Odense classroom dataset "
            "(building O44): solar radiation, outdoor temperature, occupancy, "
            "damper and radiator valve positions"
        ),
    ),
}


def get_model_spec(name: str) -> ModelSpec:
    """Look up a model spec by case-insensitive name."""
    for key, spec in MODEL_REGISTRY.items():
        if key.lower() == name.lower():
            return spec
    known = ", ".join(MODEL_REGISTRY)
    raise ReproError(f"unknown model {name!r}; known models: {known}")
