"""The ``modelDescription.xml`` document of an FMU archive.

The model description is the metadata that pgFMU reads once at
``fmu_create`` time to populate its model catalogue (Challenge 2 in the
paper): variable names, causalities, types, start/min/max values, and the
default experiment (start/stop time, step size, tolerance) that configures
simulation when the user does not override it.
"""

from __future__ import annotations

import uuid
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import FmuFormatError, FmuVariableError
from repro.fmi.variables import Causality, ScalarVariable

FMI_VERSION = "2.0"


@dataclass
class DefaultExperiment:
    """Default simulation window and solver settings of an FMU."""

    start_time: float = 0.0
    stop_time: float = 1.0
    tolerance: float = 1e-6
    step_size: float = 0.0

    def __post_init__(self):
        if self.stop_time <= self.start_time:
            raise FmuFormatError(
                "default experiment stopTime must be greater than startTime "
                f"(got {self.start_time} .. {self.stop_time})"
            )
        if self.step_size < 0:
            raise FmuFormatError("default experiment stepSize must be non-negative")

    def to_dict(self) -> dict:
        return {
            "startTime": self.start_time,
            "stopTime": self.stop_time,
            "tolerance": self.tolerance,
            "stepSize": self.step_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DefaultExperiment":
        return cls(
            start_time=float(data.get("startTime", 0.0)),
            stop_time=float(data.get("stopTime", 1.0)),
            tolerance=float(data.get("tolerance", 1e-6)),
            step_size=float(data.get("stepSize", 0.0)),
        )


@dataclass
class ModelDescription:
    """In-memory representation of ``modelDescription.xml``.

    Attributes
    ----------
    model_name:
        Human-readable model name (the Modelica class name for compiled
        models).
    guid:
        FMI GUID; pgFMU uses it as the ``modelId`` (UUID) of the catalogue.
    variables:
        Ordered list of :class:`ScalarVariable`.
    default_experiment:
        The default simulation window.
    description / generation_tool:
        Documentation attributes.
    """

    model_name: str
    guid: str = field(default_factory=lambda: str(uuid.uuid4()))
    variables: List[ScalarVariable] = field(default_factory=list)
    default_experiment: DefaultExperiment = field(default_factory=DefaultExperiment)
    description: str = ""
    generation_tool: str = "repro.modelica"

    def __post_init__(self):
        self._reindex()

    def _reindex(self) -> None:
        """Assign value references and rebuild the name index."""
        self._by_name: Dict[str, ScalarVariable] = {}
        for i, var in enumerate(self.variables):
            var.value_reference = i
            if var.name in self._by_name:
                raise FmuFormatError(f"duplicate variable name in model description: {var.name!r}")
            self._by_name[var.name] = var

    # ------------------------------------------------------------------ #
    # Variable access
    # ------------------------------------------------------------------ #
    def add_variable(self, variable: ScalarVariable) -> ScalarVariable:
        """Append a variable and assign its value reference."""
        if variable.name in self._by_name:
            raise FmuFormatError(f"duplicate variable name: {variable.name!r}")
        variable.value_reference = len(self.variables)
        self.variables.append(variable)
        self._by_name[variable.name] = variable
        return variable

    def variable(self, name: str) -> ScalarVariable:
        """Look up a variable by name, raising ``FmuVariableError`` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise FmuVariableError(
                f"model {self.model_name!r} has no variable named {name!r}"
            ) from None

    def has_variable(self, name: str) -> bool:
        return name in self._by_name

    def variables_by_causality(self, causality: Causality) -> List[ScalarVariable]:
        """All variables with the given causality, in declaration order."""
        return [v for v in self.variables if v.causality is causality]

    @property
    def parameters(self) -> List[ScalarVariable]:
        return self.variables_by_causality(Causality.PARAMETER)

    @property
    def inputs(self) -> List[ScalarVariable]:
        return self.variables_by_causality(Causality.INPUT)

    @property
    def outputs(self) -> List[ScalarVariable]:
        return self.variables_by_causality(Causality.OUTPUT)

    @property
    def states(self) -> List[ScalarVariable]:
        return [v for v in self.variables if v.is_state]

    # ------------------------------------------------------------------ #
    # XML (de)serialization
    # ------------------------------------------------------------------ #
    def to_xml(self) -> str:
        """Serialize to an FMI-2.0-flavoured ``modelDescription.xml`` string."""
        root = ET.Element(
            "fmiModelDescription",
            {
                "fmiVersion": FMI_VERSION,
                "modelName": self.model_name,
                "guid": self.guid,
                "description": self.description,
                "generationTool": self.generation_tool,
                "numberOfEventIndicators": "0",
            },
        )
        experiment = ET.SubElement(root, "DefaultExperiment")
        for key, value in self.default_experiment.to_dict().items():
            experiment.set(key, repr(float(value)))

        model_vars = ET.SubElement(root, "ModelVariables")
        for var in self.variables:
            attrs = {
                "name": var.name,
                "valueReference": str(var.value_reference),
                "causality": var.causality.value,
                "variability": var.variability.value,
            }
            if var.description:
                attrs["description"] = var.description
            sv = ET.SubElement(model_vars, "ScalarVariable", attrs)
            type_attrs = {}
            if var.start is not None:
                type_attrs["start"] = str(var.start)
            if var.minimum is not None:
                type_attrs["min"] = repr(var.minimum)
            if var.maximum is not None:
                type_attrs["max"] = repr(var.maximum)
            if var.unit:
                type_attrs["unit"] = var.unit
            ET.SubElement(sv, var.var_type.value, type_attrs)

        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "ModelDescription":
        """Parse a ``modelDescription.xml`` string."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise FmuFormatError(f"invalid modelDescription.xml: {exc}") from exc
        if root.tag != "fmiModelDescription":
            raise FmuFormatError(
                f"unexpected root element {root.tag!r} in modelDescription.xml"
            )

        experiment = DefaultExperiment()
        exp_node = root.find("DefaultExperiment")
        if exp_node is not None:
            experiment = DefaultExperiment.from_dict(exp_node.attrib)

        variables: List[ScalarVariable] = []
        model_vars = root.find("ModelVariables")
        if model_vars is not None:
            for sv in model_vars.findall("ScalarVariable"):
                if len(sv) == 0:
                    raise FmuFormatError(
                        f"ScalarVariable {sv.get('name')!r} has no type element"
                    )
                type_node = sv[0]
                variables.append(
                    ScalarVariable(
                        name=sv.get("name", ""),
                        causality=sv.get("causality", "local"),
                        variability=sv.get("variability", "continuous"),
                        var_type=type_node.tag,
                        start=type_node.get("start"),
                        minimum=type_node.get("min"),
                        maximum=type_node.get("max"),
                        description=sv.get("description", ""),
                        unit=type_node.get("unit", ""),
                    )
                )

        return cls(
            model_name=root.get("modelName", "unnamed"),
            guid=root.get("guid", str(uuid.uuid4())),
            variables=variables,
            default_experiment=experiment,
            description=root.get("description", ""),
            generation_tool=root.get("generationTool", ""),
        )

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        model_name: str,
        variables: Iterable[ScalarVariable],
        default_experiment: Optional[DefaultExperiment] = None,
        description: str = "",
    ) -> "ModelDescription":
        """Build a model description from an iterable of variables."""
        md = cls(
            model_name=model_name,
            variables=list(variables),
            description=description,
        )
        if default_experiment is not None:
            md.default_experiment = default_experiment
        return md
