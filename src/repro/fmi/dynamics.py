"""The equation payload ("binary") of our FMU archives.

A real FMU ships compiled C code implementing the model equations.  Our
archives instead carry an :class:`OdeSystem`: an explicit first-order ODE

    der(x_i) = f_i(t, states, inputs, parameters)
    y_j      = g_j(t, states, inputs, parameters)

whose right-hand sides are arithmetic expressions (see
:mod:`repro.fmi.expressions`).  The system is JSON-serializable so it can be
stored inside the ``.fmu`` zip next to ``modelDescription.xml``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

import numpy as np

from repro.errors import FmuFormatError
from repro.fmi.expressions import CompiledExpression

#: Name under which the independent variable is exposed to equations.
TIME_NAME = "time"


@dataclass
class StateEquation:
    """One continuous state and its derivative expression."""

    name: str
    derivative: str
    start: float = 0.0

    def to_dict(self) -> dict:
        return {"name": self.name, "derivative": self.derivative, "start": self.start}

    @classmethod
    def from_dict(cls, data: dict) -> "StateEquation":
        return cls(
            name=data["name"],
            derivative=data["derivative"],
            start=float(data.get("start", 0.0)),
        )


@dataclass
class OutputEquation:
    """One algebraic output defined by an expression."""

    name: str
    expression: str

    def to_dict(self) -> dict:
        return {"name": self.name, "expression": self.expression}

    @classmethod
    def from_dict(cls, data: dict) -> "OutputEquation":
        return cls(name=data["name"], expression=data["expression"])


@dataclass
class OdeSystem:
    """An explicit ODE system with named states, inputs, outputs and parameters.

    Attributes
    ----------
    states:
        Ordered state equations.  Order defines the state vector layout.
    outputs:
        Ordered output equations.
    inputs:
        Input variable names (values are provided externally at runtime).
    parameters:
        Mapping of parameter name to default value.
    """

    states: List[StateEquation] = field(default_factory=list)
    outputs: List[OutputEquation] = field(default_factory=list)
    inputs: List[str] = field(default_factory=list)
    parameters: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        self._validate()
        self._compile()

    # ------------------------------------------------------------------ #
    # Validation and compilation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        names = [s.name for s in self.states] + [o.name for o in self.outputs]
        names += list(self.inputs) + list(self.parameters)
        seen = set()
        for name in names:
            if name == TIME_NAME:
                raise FmuFormatError(f"variable name {TIME_NAME!r} is reserved")
            if name in seen:
                raise FmuFormatError(f"duplicate variable name in ODE system: {name!r}")
            seen.add(name)
        if not self.states:
            raise FmuFormatError("an ODE system must declare at least one state")

    def _compile(self) -> None:
        known = self.variable_names() | {TIME_NAME}
        self._state_exprs = []
        for state in self.states:
            expr = CompiledExpression(state.derivative)
            expr.validate_names(known)
            self._state_exprs.append(expr)
        self._output_exprs = []
        for output in self.outputs:
            expr = CompiledExpression(output.expression)
            expr.validate_names(known)
            self._output_exprs.append(expr)
        # Code-generated hot-path kernel (see repro.fmi.kernel).  ``None``
        # when the system is not compilable, in which case evaluation stays
        # on the interpreted path.  ``compiled_enabled`` is the per-instance
        # escape hatch used by equivalence tests and benchmarks.
        from repro.fmi.kernel import build_kernel

        self.compiled_enabled = True
        self._kernel = build_kernel(self)

    @property
    def kernel(self):
        """The compiled :class:`~repro.fmi.kernel.SimulationKernel`, or None."""
        return self._kernel

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def variable_names(self) -> set:
        """All declared variable names (states, outputs, inputs, parameters)."""
        names = {s.name for s in self.states}
        names |= {o.name for o in self.outputs}
        names |= set(self.inputs)
        names |= set(self.parameters)
        return names

    @property
    def state_names(self) -> List[str]:
        return [s.name for s in self.states]

    @property
    def output_names(self) -> List[str]:
        return [o.name for o in self.outputs]

    def initial_state_vector(self) -> np.ndarray:
        """The start values of all states as a vector."""
        return np.array([s.start for s in self.states], dtype=float)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def _namespace(
        self,
        t: float,
        state_vector: np.ndarray,
        input_values: Mapping[str, float],
        parameter_values: Mapping[str, float],
    ) -> Dict[str, float]:
        namespace: Dict[str, float] = {TIME_NAME: float(t)}
        namespace.update(self.parameters)
        namespace.update(parameter_values)
        for name, value in zip(self.state_names, np.atleast_1d(state_vector)):
            namespace[name] = float(value)
        for name in self.inputs:
            if name in input_values:
                namespace[name] = float(input_values[name])
            elif name not in namespace:
                namespace[name] = 0.0
        return namespace

    def derivatives(
        self,
        t: float,
        state_vector: np.ndarray,
        input_values: Mapping[str, float],
        parameter_values: Mapping[str, float],
    ) -> np.ndarray:
        """Evaluate ``der(x)`` for the whole state vector."""
        if self.compiled_enabled and self._kernel is not None:
            kernel = self._kernel
            u = kernel.input_vector(input_values, parameter_values)
            p = kernel.parameter_vector(parameter_values)
            try:
                return kernel.derivs(float(t), state_vector, u, p)
            except ZeroDivisionError:
                raise kernel.division_error() from None
        namespace = self._namespace(t, state_vector, input_values, parameter_values)
        return np.array([expr(namespace) for expr in self._state_exprs], dtype=float)

    def evaluate_outputs(
        self,
        t: float,
        state_vector: np.ndarray,
        input_values: Mapping[str, float],
        parameter_values: Mapping[str, float],
    ) -> Dict[str, float]:
        """Evaluate all output equations at the given state."""
        if self.compiled_enabled and self._kernel is not None:
            kernel = self._kernel
            u = kernel.input_vector(input_values, parameter_values)
            p = kernel.parameter_vector(parameter_values)
            try:
                values = kernel.outputs_scalar(float(t), state_vector, u, p)
            except ZeroDivisionError:
                raise kernel.division_error() from None
            return {
                name: float(value) for name, value in zip(self.output_names, values)
            }
        namespace = self._namespace(t, state_vector, input_values, parameter_values)
        return {
            output.name: expr(namespace)
            for output, expr in zip(self.outputs, self._output_exprs)
        }

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "states": [s.to_dict() for s in self.states],
            "outputs": [o.to_dict() for o in self.outputs],
            "inputs": list(self.inputs),
            "parameters": dict(self.parameters),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "OdeSystem":
        return cls(
            states=[StateEquation.from_dict(s) for s in data.get("states", [])],
            outputs=[OutputEquation.from_dict(o) for o in data.get("outputs", [])],
            inputs=list(data.get("inputs", [])),
            parameters={k: float(v) for k, v in data.get("parameters", {}).items()},
        )

    @classmethod
    def from_json(cls, text: str) -> "OdeSystem":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FmuFormatError(f"invalid model equations JSON: {exc}") from exc
        return cls.from_dict(data)
