"""Safe arithmetic expression compiler used by the FMU "binary" payload.

Our FMU archives carry model equations (state derivatives and output
equations) as plain-text arithmetic expressions over variable names.  This
module parses such expressions with Python's ``ast`` module, validates that
only arithmetic constructs and a small whitelist of math functions are used,
and compiles them into fast callables over a name->value mapping.

This plays the role of the compiled C code inside a real FMU: a sandboxed,
data-only description of the model equations that can be evaluated without
trusting arbitrary code from the archive.
"""

from __future__ import annotations

import ast
import math
from typing import Callable, Dict, Iterable, Mapping, Set

from repro.errors import FmuFormatError

#: Functions an FMU equation may call.
ALLOWED_FUNCTIONS: Dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "sqrt": math.sqrt,
    "tanh": math.tanh,
    "floor": math.floor,
    "ceil": math.ceil,
    "sign": lambda v: math.copysign(1.0, v) if v != 0 else 0.0,
}

#: Named constants usable inside equations.
ALLOWED_CONSTANTS: Dict[str, float] = {
    "pi": math.pi,
    "e": math.e,
}

#: Shared eval globals: the sandbox (no builtins, whitelisted functions only)
#: is immutable, so it is built once instead of per evaluation.
_EVAL_GLOBALS: Dict[str, Callable] = {"__builtins__": {}, **ALLOWED_FUNCTIONS}

_ALLOWED_NODES = (
    ast.Expression,
    ast.BinOp,
    ast.UnaryOp,
    ast.Name,
    ast.Load,
    ast.Call,
    ast.Constant,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.Pow,
    ast.Mod,
    ast.USub,
    ast.UAdd,
    ast.Compare,
    ast.Gt,
    ast.GtE,
    ast.Lt,
    ast.LtE,
    ast.Eq,
    ast.NotEq,
    ast.IfExp,
    ast.BoolOp,
    ast.And,
    ast.Or,
)


class CompiledExpression:
    """A validated, compiled arithmetic expression.

    Instances are callable with a mapping of variable name to value and
    return a float.  The set of free variable names is exposed via
    :attr:`names` so callers can validate data bindings up front.
    """

    def __init__(self, text: str):
        self.text = str(text)
        tree = self._parse(self.text)
        self.names: Set[str] = self._collect_names(tree)
        self._code = compile(tree, filename="<fmu-equation>", mode="eval")

    @staticmethod
    def _parse(text: str) -> ast.Expression:
        try:
            tree = ast.parse(text, mode="eval")
        except SyntaxError as exc:
            raise FmuFormatError(f"invalid model equation {text!r}: {exc}") from exc
        for node in ast.walk(tree):
            if not isinstance(node, _ALLOWED_NODES):
                raise FmuFormatError(
                    f"model equation {text!r} uses a disallowed construct: "
                    f"{type(node).__name__}"
                )
            if isinstance(node, ast.Call):
                if not isinstance(node.func, ast.Name) or node.func.id not in ALLOWED_FUNCTIONS:
                    raise FmuFormatError(
                        f"model equation {text!r} calls a disallowed function"
                    )
                if node.keywords:
                    raise FmuFormatError(
                        f"model equation {text!r}: keyword arguments are not allowed"
                    )
            if isinstance(node, ast.Constant) and not isinstance(node.value, (int, float)):
                raise FmuFormatError(
                    f"model equation {text!r} contains a non-numeric constant"
                )
        return tree

    @staticmethod
    def _collect_names(tree: ast.Expression) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                names.discard(node.func.id)
        return names - set(ALLOWED_FUNCTIONS) - set(ALLOWED_CONSTANTS)

    def __call__(self, values: Mapping[str, float]) -> float:
        namespace = dict(ALLOWED_CONSTANTS)
        namespace.update(values)
        try:
            result = eval(self._code, _EVAL_GLOBALS, namespace)
        except NameError as exc:
            raise FmuFormatError(
                f"model equation {self.text!r} references an unbound variable: {exc}"
            ) from exc
        except ZeroDivisionError:
            raise FmuFormatError(
                f"model equation {self.text!r} divided by zero during evaluation"
            ) from None
        return float(result)

    def validate_names(self, known: Iterable[str]) -> None:
        """Raise if the expression references names outside ``known``."""
        unknown = self.names - set(known)
        if unknown:
            raise FmuFormatError(
                f"model equation {self.text!r} references unknown variables: "
                f"{', '.join(sorted(unknown))}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledExpression({self.text!r})"
