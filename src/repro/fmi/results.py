"""Simulation result container, mirroring PyFMI's result object surface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import FmuVariableError


@dataclass
class SimulationResult:
    """Trajectories produced by :meth:`repro.fmi.model.FmuModel.simulate`.

    Access patterns supported:

    * ``result["x"]`` - the sampled trajectory of variable ``x`` (PyFMI style).
    * ``result.time`` - the shared time grid.
    * ``result.variables`` - names of all recorded variables.
    * ``result.rows()`` - long-format rows ``(time, varName, value)``, the
      shape pgFMU's ``fmu_simulate`` UDF emits.
    """

    time: np.ndarray
    trajectories: Dict[str, np.ndarray]
    solver_stats: dict = field(default_factory=dict)

    def __post_init__(self):
        self.time = np.asarray(self.time, dtype=float)
        clean: Dict[str, np.ndarray] = {}
        for name, values in self.trajectories.items():
            arr = np.asarray(values, dtype=float)
            if arr.shape != self.time.shape:
                raise FmuVariableError(
                    f"trajectory for {name!r} has length {arr.shape} but the time "
                    f"grid has length {self.time.shape}"
                )
            clean[name] = arr
        self.trajectories = clean

    @property
    def variables(self) -> List[str]:
        """Names of all recorded variables."""
        return list(self.trajectories)

    def __contains__(self, name: str) -> bool:
        return name in self.trajectories

    def __getitem__(self, name: str) -> np.ndarray:
        if name == "time":
            return self.time
        try:
            return self.trajectories[name]
        except KeyError:
            raise FmuVariableError(f"simulation result has no variable {name!r}") from None

    def final(self, name: str) -> float:
        """The last recorded value of a variable."""
        return float(self[name][-1])

    def rows(self) -> Iterator[Tuple[float, str, float]]:
        """Yield long-format rows ``(time, varName, value)``."""
        for i, t in enumerate(self.time):
            for name, values in self.trajectories.items():
                yield float(t), name, float(values[i])

    def to_dict(self) -> dict:
        """Plain-dict form used by tests and the experiment harness."""
        return {
            "time": self.time.tolist(),
            "trajectories": {k: v.tolist() for k, v in self.trajectories.items()},
            "solver_stats": dict(self.solver_stats),
        }

    def __len__(self) -> int:
        return len(self.time)
