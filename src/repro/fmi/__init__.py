"""FMI 2.0-style Functional Mock-up Unit substrate.

The original pgFMU builds on PyFMI and FMU binaries produced by
JModelica/OpenModelica.  Neither is available offline, so this subpackage
implements the same *surface* from scratch:

* :mod:`repro.fmi.variables` - scalar variables with causality, variability
  and type attributes, as declared in ``modelDescription.xml``.
* :mod:`repro.fmi.model_description` - the model description document with
  XML (de)serialization and a default experiment section.
* :mod:`repro.fmi.dynamics` - the "binary" payload of our FMUs: an
  expression-based ODE system (state derivatives and output equations as
  arithmetic expressions over parameters, states, inputs and time).
* :mod:`repro.fmi.kernel` - compiled simulation kernels: the equation
  payload code-generated into positional-indexing hot-path functions.
* :mod:`repro.fmi.archive` - packing/unpacking ``.fmu`` zip archives.
* :mod:`repro.fmi.model` - the runtime: instantiate, get/set, simulate.
* :mod:`repro.fmi.results` - simulation result container.

The public helpers :func:`load_fmu` and :func:`dump_fmu` mirror PyFMI's
``load_fmu`` and the write side used by the Modelica compiler.
"""

from repro.fmi.variables import (
    Causality,
    Variability,
    VariableType,
    ScalarVariable,
)
from repro.fmi.model_description import DefaultExperiment, ModelDescription
from repro.fmi.dynamics import OdeSystem, StateEquation, OutputEquation
from repro.fmi.kernel import SimulationKernel, build_kernel
from repro.fmi.archive import FmuArchive, dump_fmu, read_fmu
from repro.fmi.model import FmuModel, load_fmu
from repro.fmi.results import SimulationResult

__all__ = [
    "Causality",
    "Variability",
    "VariableType",
    "ScalarVariable",
    "DefaultExperiment",
    "ModelDescription",
    "OdeSystem",
    "StateEquation",
    "OutputEquation",
    "SimulationKernel",
    "build_kernel",
    "FmuArchive",
    "dump_fmu",
    "read_fmu",
    "FmuModel",
    "load_fmu",
    "SimulationResult",
]
