"""Compiled simulation kernels: code-generated hot paths for :class:`OdeSystem`.

The interpreted evaluation path (:mod:`repro.fmi.expressions`) rebuilds a
name->value namespace dict and ``eval``s every state equation on **every**
right-hand-side call - RK45 makes six of those per step and calibration
re-simulates the same model thousands of times.  This module plays the role
of the FMU's compiled C binary: it code-generates one plain Python function
per model from the already-validated equation ASTs,

* ``derivs(t, x, u, p, out) -> out`` - the scalar ODE right-hand side with
  states/inputs/parameters as positional array indexing (no namespace dict),
* ``outputs_scalar(t, x, u, p) -> tuple`` - all output equations at one
  point,
* ``outputs(t, X, U, p) -> dict of ndarrays`` - all output equations
  vectorized over a whole trajectory in a single numpy pass, and
* the **batched fleet pair** ``derivs_batch(t, X, U, P, out)`` /
  ``outputs_batch(times, states, inputs, P)`` - the same equations with one
  *row per model instance*: states are an ``(N, d)`` matrix, inputs an
  ``(N, n_u)`` matrix and parameters an ``(N, n_p)`` matrix, so a whole
  fleet integrates through one numpy-vectorized right-hand-side call
  (``t`` may be a scalar shared by all rows, or a per-row vector for
  solvers whose rows are at different times),

and compiles them under the same sandbox rules as the interpreted path: an
empty ``__builtins__`` and only the whitelisted math functions.  Named
constants (``pi``, ``e``) and constant subexpressions are folded at
generation time.

Semantics notes
---------------
* The scalar kernels execute the *same* Python expression as the interpreted
  path (names merely become array subscripts), so their results are
  bit-identical to ``CompiledExpression.__call__``.
* The vectorized output kernel maps the whitelist onto numpy ufuncs and
  rewrites conditionals/boolean operators into ``np.where`` forms; values
  match the scalar path to floating-point rounding.  Error behaviour differs
  in one corner: a division by zero yields ``inf``/``nan`` elements (numpy
  semantics, warnings suppressed) instead of the interpreted path's
  :class:`~repro.errors.FmuFormatError`.
* A system whose equations reference names that are unbound at evaluation
  time (e.g. an output referenced from another equation) is not compilable;
  :func:`build_kernel` returns ``None`` and callers keep the interpreted
  path, which raises the same runtime error it always did.
* The batched kernels use the vectorized lowering, so their per-row values
  match the scalar path to floating-point rounding (bit-identical for pure
  arithmetic; transcendental ufuncs may differ in the last ulp).  When the
  vectorized lowering fails for an otherwise compilable system,
  :attr:`SimulationKernel.supports_batch` is False and fleet callers fall
  back to per-instance scalar kernels.
"""

from __future__ import annotations

import ast
import functools
import operator
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FmuFormatError
from repro.fmi.expressions import (
    ALLOWED_CONSTANTS,
    ALLOWED_FUNCTIONS,
    CompiledExpression,
    _EVAL_GLOBALS,
)


class _NotCompilable(Exception):
    """Raised during codegen when an equation cannot be lowered to a kernel."""


# --------------------------------------------------------------------------- #
# Evaluation namespaces
# --------------------------------------------------------------------------- #
#: Globals of the scalar kernels: exactly the interpreted sandbox (shared so
#: the whitelist cannot diverge between the two paths).
_SCALAR_GLOBALS: Dict[str, object] = _EVAL_GLOBALS


def _reduce_min(*args):
    return functools.reduce(np.minimum, args)


def _reduce_max(*args):
    return functools.reduce(np.maximum, args)


def _truthy(value):
    return np.asarray(value) != 0


def _logical_and(a, b):
    """Elementwise ``a and b`` with Python's value-returning semantics."""
    return np.where(_truthy(a), b, a)


def _logical_or(a, b):
    """Elementwise ``a or b`` with Python's value-returning semantics."""
    return np.where(_truthy(a), a, b)


def _bcast(value, n: int) -> np.ndarray:
    """Broadcast a (possibly scalar) expression result to an n-vector of floats."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.base is not None:
        # An output that is a bare state/input lowers to a column slice;
        # return a fresh array so trajectories never alias the state matrix.
        return arr.copy()
    return arr


def _scalar_or_nan(fn, *values: float) -> float:
    """One strict scalar evaluation with numpy-style error *values*.

    The vectorized lowering evaluates **both** branches of a conditional
    (``a if c else b`` becomes ``_where(c, a, b)``), so a domain error in
    the branch that will be discarded must yield a discardable element -
    exactly what the plain numpy ufuncs do (nan/inf + warning) - rather
    than raise the way the scalar kernels' short-circuiting path never
    would.  Non-finite values that survive into a *taken* branch are caught
    downstream (solver divergence -> sequential rerun reports the scalar
    path's exact error).
    """
    try:
        result = fn(*values)
    except ValueError:  # math domain error -> numpy nan
        return float("nan")
    except OverflowError:  # e.g. exp(800) -> numpy inf
        return float("inf")
    except ZeroDivisionError:  # 0.0 ** negative -> numpy inf
        return float("inf")
    if isinstance(result, complex):  # negative base ** fractional -> numpy nan
        return float("nan")
    return result


def _strict_elementwise(fn):
    """Elementwise libm evaluation matching the scalar kernels bit-for-bit.

    numpy's SIMD transcendental ufuncs (sin, exp, ...) round differently
    from libm in the last ulp.  That is harmless for output evaluation (one
    pass, no feedback), but inside a batched ODE right-hand side the
    adaptive solver's step controller amplifies ulp-level differences into
    diverging step sequences - so the batched *derivative* kernel evaluates
    these functions through the exact scalar callables, element by element.
    Domain errors produce numpy-style nan/inf elements (see
    :func:`_scalar_or_nan`); the happy path stays a C-speed ``map``.
    Extra arguments (``log(x, base)``) broadcast elementwise like a ufunc.
    """

    def wrapped(*values):
        arrays = [np.asarray(value, dtype=float) for value in values]
        if all(arr.ndim == 0 for arr in arrays):
            return _scalar_or_nan(fn, *(float(arr) for arr in arrays))
        broadcast = np.broadcast_arrays(*arrays)
        columns = [arr.ravel().tolist() for arr in broadcast]
        count = len(columns[0])
        try:
            return np.fromiter(map(fn, *columns), dtype=float, count=count).reshape(
                broadcast[0].shape
            )
        except (ValueError, OverflowError, ZeroDivisionError, TypeError):
            return np.fromiter(
                (_scalar_or_nan(fn, *row) for row in zip(*columns)),
                dtype=float,
                count=count,
            ).reshape(broadcast[0].shape)

    return wrapped


def _strict_pow(a, b):
    """Elementwise ``a ** b`` through CPython's float pow (see _strict_elementwise).

    numpy's vectorized power ufunc rounds differently from scalar pow in a
    few percent of inputs; the batched derivative kernel lowers ``**`` to
    this helper instead.  Error inputs follow numpy's value semantics
    (``0.0 ** -1`` -> inf, negative base ** fractional -> nan) so that a
    discarded conditional branch cannot raise - see :func:`_scalar_or_nan`.
    """
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.ndim == 0 and b_arr.ndim == 0:
        return _scalar_or_nan(lambda base: base ** float(b_arr), float(a_arr))
    a_b, b_b = np.broadcast_arrays(a_arr, b_arr)
    pairs = zip(a_b.ravel().tolist(), b_b.ravel().tolist())
    try:
        flat = np.fromiter((x ** y for x, y in pairs), dtype=float, count=a_b.size)
    except (ValueError, OverflowError, ZeroDivisionError, TypeError):
        pairs = zip(a_b.ravel().tolist(), b_b.ravel().tolist())
        flat = np.fromiter(
            (_scalar_or_nan(lambda base, _y=y: base ** _y, x) for x, y in pairs),
            dtype=float,
            count=a_b.size,
        )
    return flat.reshape(a_b.shape)


#: Globals of the vectorized output kernel: numpy ufunc equivalents.
_VECTOR_GLOBALS: Dict[str, object] = {
    "__builtins__": {},
    "abs": np.abs,
    "min": _reduce_min,
    "max": _reduce_max,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "exp": np.exp,
    "log": np.log,
    "log10": np.log10,
    "sqrt": np.sqrt,
    "tanh": np.tanh,
    "floor": np.floor,
    "ceil": np.ceil,
    "sign": np.sign,
    "_where": np.where,
    "_land": _logical_and,
    "_lor": _logical_or,
    "_bcast": _bcast,
}

#: Globals of the batched derivative kernel: as _VECTOR_GLOBALS, but the
#: transcendental functions (the ones whose SIMD ufuncs are not correctly
#: rounded) evaluate through the exact scalar callables so batched and
#: scalar right-hand sides are bit-identical, keeping the adaptive batch
#: solver's per-row step sequences in lockstep with sequential solves.
#: Arithmetic, comparisons, abs/min/max/sqrt/floor/ceil/sign and the
#: where/bool helpers are exact in SIMD form and stay vectorized.
_BATCH_GLOBALS: Dict[str, object] = dict(_VECTOR_GLOBALS)
for _name in ("sin", "cos", "tan", "exp", "log", "log10", "tanh"):
    _BATCH_GLOBALS[_name] = _strict_elementwise(ALLOWED_FUNCTIONS[_name])
_BATCH_GLOBALS["_pow"] = _strict_pow


# --------------------------------------------------------------------------- #
# AST lowering
# --------------------------------------------------------------------------- #
class _LowerNames(ast.NodeTransformer):
    """Rewrite variable names into positional subscripts of the kernel arguments.

    ``slots`` maps a model variable name to ready-made replacement source
    (e.g. ``_x[0]`` or ``_X[:, 0]``).  Named constants are folded into
    literals.  In vector mode conditionals and boolean operators are
    rewritten into their ``np.where`` equivalents so the generated function
    is valid over arrays.
    """

    def __init__(self, slots: Mapping[str, str], vector: bool):
        self.slots = dict(slots)
        self.vector = vector

    def visit_Name(self, node: ast.Name) -> ast.expr:
        # Model variables shadow the named constants, exactly as the
        # interpreted namespace (constants first, values overlaid) does for
        # a variable named e.g. ``e``.
        replacement = self.slots.get(node.id)
        if replacement is not None:
            return ast.parse(replacement, mode="eval").body
        if node.id in ALLOWED_CONSTANTS:
            return ast.Constant(value=ALLOWED_CONSTANTS[node.id])
        raise _NotCompilable(f"name {node.id!r} is not bound at evaluation time")

    def visit_Call(self, node: ast.Call) -> ast.expr:
        # The callee name stays as-is (resolved from the kernel globals);
        # only the arguments are lowered.  A *variable* sharing a whitelisted
        # function's name would shadow it in the interpreted namespace (and
        # fail at call time there); don't compile that shape.
        if isinstance(node.func, ast.Name) and node.func.id in self.slots:
            raise _NotCompilable(
                f"call target {node.func.id!r} is shadowed by a model variable"
            )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("min", "max")
            and len(node.args) < 2
        ):
            # Single-argument min/max is a runtime TypeError on the
            # interpreted path; the vectorized reduce helper would silently
            # accept it, so refuse to compile instead.
            raise _NotCompilable(f"{node.func.id}() needs at least two arguments")
        node.args = [self.visit(arg) for arg in node.args]
        return node

    def visit_IfExp(self, node: ast.IfExp) -> ast.expr:
        node = ast.IfExp(
            test=self.visit(node.test),
            body=self.visit(node.body),
            orelse=self.visit(node.orelse),
        )
        if not self.vector:
            return node
        return ast.Call(
            func=ast.Name(id="_where", ctx=ast.Load()),
            args=[node.test, node.body, node.orelse],
            keywords=[],
        )

    def visit_BoolOp(self, node: ast.BoolOp) -> ast.expr:
        values = [self.visit(value) for value in node.values]
        if not self.vector:
            return ast.BoolOp(op=node.op, values=values)
        helper = "_land" if isinstance(node.op, ast.And) else "_lor"
        expr = values[0]
        for value in values[1:]:
            expr = ast.Call(
                func=ast.Name(id=helper, ctx=ast.Load()),
                args=[expr, value],
                keywords=[],
            )
        return expr

    def visit_Compare(self, node: ast.Compare) -> ast.expr:
        operands = [self.visit(node.left)] + [self.visit(c) for c in node.comparators]
        if not self.vector or len(node.ops) == 1:
            return ast.Compare(
                left=operands[0], ops=node.ops, comparators=operands[1:]
            )
        # Chained comparison over arrays: AND of the pairwise comparisons
        # (operands are pure expressions, so double evaluation is safe).
        expr: ast.expr = ast.Compare(
            left=operands[0], ops=[node.ops[0]], comparators=[operands[1]]
        )
        for i, op in enumerate(node.ops[1:], start=1):
            pair = ast.Compare(
                left=operands[i], ops=[op], comparators=[operands[i + 1]]
            )
            expr = ast.Call(
                func=ast.Name(id="_land", ctx=ast.Load()),
                args=[expr, pair],
                keywords=[],
            )
        return expr


_FOLD_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Pow: operator.pow,
    ast.Mod: operator.mod,
}
_FOLD_UNARY = {ast.USub: operator.neg, ast.UAdd: operator.pos}


class _FoldConstants(ast.NodeTransformer):
    """Evaluate numeric-constant subtrees once at generation time.

    Only the arithmetic operators the sandbox allows are folded, with the
    exact Python operator the runtime would apply, so folded and unfolded
    evaluation are bit-identical.  Anything that raises is left in place.
    """

    def visit_BinOp(self, node: ast.BinOp) -> ast.expr:
        node = ast.BinOp(op=node.op, left=self.visit(node.left), right=self.visit(node.right))
        fold = _FOLD_BINOPS.get(type(node.op))
        if (
            fold is not None
            and isinstance(node.left, ast.Constant)
            and isinstance(node.right, ast.Constant)
        ):
            try:
                value = fold(node.left.value, node.right.value)
            except Exception:
                return node
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return ast.Constant(value=value)
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.expr:
        node = ast.UnaryOp(op=node.op, operand=self.visit(node.operand))
        fold = _FOLD_UNARY.get(type(node.op))
        if fold is not None and isinstance(node.operand, ast.Constant):
            try:
                value = fold(node.operand.value)
            except Exception:
                return node
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return ast.Constant(value=value)
        return node


class _StrictPow(ast.NodeTransformer):
    """Rewrite remaining ``**`` into ``_pow(a, b)`` calls (batched derivatives).

    Runs *after* constant folding, so constant power subexpressions are
    folded to literals at codegen time (with the same CPython pow the
    helper would use) and only data-dependent powers pay the strict
    elementwise evaluation.
    """

    def visit_BinOp(self, node: ast.BinOp) -> ast.expr:
        node = ast.BinOp(
            op=node.op, left=self.visit(node.left), right=self.visit(node.right)
        )
        if isinstance(node.op, ast.Pow):
            return ast.Call(
                func=ast.Name(id="_pow", ctx=ast.Load()),
                args=[node.left, node.right],
                keywords=[],
            )
        return node


def _lower(
    text: str, slots: Mapping[str, str], vector: bool, strict_pow: bool = False
) -> str:
    """Parse, sandbox-validate, lower and fold one equation into source text."""
    tree = CompiledExpression._parse(str(text))
    lowered = _LowerNames(slots, vector).visit(tree.body)
    folded = _FoldConstants().visit(lowered)
    if strict_pow:
        folded = _StrictPow().visit(folded)
    ast.fix_missing_locations(folded)
    return ast.unparse(folded)


def _compile_function(source: str, globals_dict: Dict[str, object], name: str):
    namespace: Dict[str, object] = {}
    exec(compile(source, "<fmu-kernel>", "exec"), globals_dict, namespace)
    return namespace[name]


# --------------------------------------------------------------------------- #
# The kernel object
# --------------------------------------------------------------------------- #
class SimulationKernel:
    """Code-generated evaluation functions for one :class:`OdeSystem`.

    The kernel fixes the variable layout once: states, inputs and parameters
    become positions in the ``x``/``u``/``p`` vectors (declaration order),
    and every generated function indexes those vectors directly instead of
    building a namespace dict.  Scalar kernels unpack ``x`` with ``tolist()``
    so the per-step arithmetic runs on plain Python floats, exactly like the
    interpreted ``eval`` path.
    """

    __slots__ = (
        "state_names",
        "input_names",
        "output_names",
        "parameter_names",
        "n_states",
        "n_inputs",
        "source",
        "_parameters",
        "_equation_texts",
        "_derivs",
        "_outputs_scalar",
        "_outputs_vector",
        "_derivs_batch",
        "_outputs_batch",
    )

    def __init__(self, system):
        self.state_names: List[str] = list(system.state_names)
        self.input_names: List[str] = list(system.inputs)
        self.output_names: List[str] = list(system.output_names)
        self.parameter_names: List[str] = list(system.parameters)
        # Live reference, not a snapshot: callers (e.g. the model builders'
        # _apply_parameters) mutate the system's parameter values in place
        # after construction, and the interpreted path reads them at call
        # time - the kernel must see the same defaults.
        self._parameters: Dict[str, float] = system.parameters
        self._equation_texts: List[str] = [s.derivative for s in system.states] + [
            o.expression for o in system.outputs
        ]
        self.n_states = len(self.state_names)
        self.n_inputs = len(self.input_names)

        from repro.fmi.dynamics import TIME_NAME

        scalar_slots = {TIME_NAME: "_t"}
        vector_slots = {TIME_NAME: "_t"}
        batch_slots = {TIME_NAME: "_t"}
        for i, name in enumerate(self.state_names):
            scalar_slots[name] = f"_x[{i}]"
            vector_slots[name] = f"_X[:, {i}]"
            batch_slots[name] = f"_X[:, {i}]"
        for i, name in enumerate(self.input_names):
            scalar_slots[name] = f"_u[{i}]"
            vector_slots[name] = f"_U[:, {i}]"
            batch_slots[name] = f"_U[:, {i}]"
        for i, name in enumerate(self.parameter_names):
            scalar_slots[name] = f"_p[{i}]"
            vector_slots[name] = f"_p[{i}]"
            batch_slots[name] = f"_P[:, {i}]"

        derivs_lines = ["def _derivs(_t, _x, _u, _p, _out):", "    _x = _x.tolist()"]
        for i, state in enumerate(system.states):
            derivs_lines.append(
                f"    _out[{i}] = {_lower(state.derivative, scalar_slots, vector=False)}"
            )
        derivs_lines.append("    return _out")

        out_scalar_lines = ["def _outputs_scalar(_t, _x, _u, _p):", "    _x = _x.tolist()"]
        out_vector_lines = ["def _outputs_vector(_t, _X, _U, _p, _n):"]
        returns_scalar: List[str] = []
        returns_vector: List[str] = []
        for i, output in enumerate(system.outputs):
            out_scalar_lines.append(
                f"    _y{i} = {_lower(output.expression, scalar_slots, vector=False)}"
            )
            out_vector_lines.append(
                f"    _y{i} = _bcast({_lower(output.expression, vector_slots, vector=True)}, _n)"
            )
            returns_scalar.append(f"_y{i}")
            returns_vector.append(f"_y{i}")
        out_scalar_lines.append(f"    return ({', '.join(returns_scalar)}{',' if returns_scalar else ''})")
        out_vector_lines.append(f"    return ({', '.join(returns_vector)}{',' if returns_vector else ''})")

        derivs_source = "\n".join(derivs_lines)
        out_scalar_source = "\n".join(out_scalar_lines)
        out_vector_source = "\n".join(out_vector_lines)
        sources = [derivs_source, out_scalar_source, out_vector_source]

        self._derivs = _compile_function(derivs_source, _SCALAR_GLOBALS, "_derivs")
        self._outputs_scalar = _compile_function(
            out_scalar_source, _SCALAR_GLOBALS, "_outputs_scalar"
        )
        self._outputs_vector = _compile_function(
            out_vector_source, _VECTOR_GLOBALS, "_outputs_vector"
        )

        # Batched fleet kernels: one row per instance, parameters as a
        # per-row matrix.  Generated separately so a system whose equations
        # resist the vectorized lowering keeps its scalar kernels and merely
        # reports supports_batch=False (fleet callers then fall back to
        # per-instance integration).
        self._derivs_batch = None
        self._outputs_batch = None
        try:
            db_lines = ["def _derivs_batch(_t, _X, _U, _P, _out):"]
            for i, state in enumerate(system.states):
                db_lines.append(
                    f"    _out[:, {i}] = "
                    f"{_lower(state.derivative, batch_slots, vector=True, strict_pow=True)}"
                )
            db_lines.append("    return _out")
            ob_lines = ["def _outputs_batch(_t, _X, _U, _P, _n):"]
            returns_batch: List[str] = []
            for i, output in enumerate(system.outputs):
                ob_lines.append(
                    f"    _y{i} = _bcast({_lower(output.expression, batch_slots, vector=True)}, _n)"
                )
                returns_batch.append(f"_y{i}")
            ob_lines.append(
                f"    return ({', '.join(returns_batch)}{',' if returns_batch else ''})"
            )
            db_source = "\n".join(db_lines)
            ob_source = "\n".join(ob_lines)
            self._derivs_batch = _compile_function(db_source, _BATCH_GLOBALS, "_derivs_batch")
            self._outputs_batch = _compile_function(ob_source, _VECTOR_GLOBALS, "_outputs_batch")
            sources += [db_source, ob_source]
        except _NotCompilable:
            self._derivs_batch = None
            self._outputs_batch = None
        self.source = "\n\n".join(sources)

    # ------------------------------------------------------------------ #
    # Argument packing
    # ------------------------------------------------------------------ #
    def parameter_vector(self, overrides: Optional[Mapping[str, float]] = None) -> Tuple[float, ...]:
        """Parameter values in kernel order: defaults overlaid with ``overrides``."""
        defaults = self._parameters
        if not overrides:
            return tuple(float(defaults[name]) for name in self.parameter_names)
        return tuple(
            float(overrides.get(name, defaults[name])) for name in self.parameter_names
        )

    def parameter_matrix(
        self, overrides_per_row: Sequence[Optional[Mapping[str, float]]]
    ) -> np.ndarray:
        """Per-row parameter values in kernel order as an ``(N, n_p)`` matrix."""
        return np.array(
            [self.parameter_vector(overrides) for overrides in overrides_per_row],
            dtype=float,
        ).reshape(len(overrides_per_row), len(self.parameter_names))

    def input_vector(
        self,
        input_values: Mapping[str, float],
        parameter_values: Optional[Mapping[str, float]] = None,
    ) -> List[float]:
        """Input values in kernel order, with the interpreted path's defaulting
        (missing inputs fall back to ``parameter_values``, then to 0.0)."""
        values: List[float] = []
        for name in self.input_names:
            if name in input_values:
                values.append(float(input_values[name]))
            elif parameter_values is not None and name in parameter_values:
                values.append(float(parameter_values[name]))
            else:
                values.append(0.0)
        return values

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def derivs(
        self,
        t: float,
        x: np.ndarray,
        u: Sequence[float],
        p: Sequence[float],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate the state derivative vector at one point."""
        if out is None:
            out = np.empty(self.n_states)
        x = np.atleast_1d(np.asarray(x, dtype=float))
        return self._derivs(t, x, u, p, out)

    def outputs_scalar(
        self, t: float, x: np.ndarray, u: Sequence[float], p: Sequence[float]
    ) -> Tuple[float, ...]:
        """Evaluate all output equations at one point."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        return self._outputs_scalar(t, x, u, p)

    def outputs(
        self,
        times: np.ndarray,
        states: np.ndarray,
        inputs: np.ndarray,
        p: Sequence[float],
    ) -> Dict[str, np.ndarray]:
        """Evaluate all output equations over a whole trajectory in one pass.

        Parameters
        ----------
        times:
            1-D array of the n output times.
        states:
            (n, n_states) state trajectory.
        inputs:
            (n, n_inputs) input trajectory (may be empty when the model has
            no inputs).
        p:
            Parameter values in kernel order.
        """
        times = np.asarray(times, dtype=float)
        with np.errstate(all="ignore"):
            values = self._outputs_vector(times, states, inputs, p, times.shape[0])
        if any(not np.isfinite(column).all() for column in values):
            # numpy turns e.g. division by zero into inf/nan where the
            # scalar path raises; re-evaluate point-by-point so error
            # behaviour (and legitimate infinities) match the interpreted
            # semantics exactly.
            return self._outputs_pointwise(times, states, inputs, p)
        return dict(zip(self.output_names, values))

    # ------------------------------------------------------------------ #
    # Batched (fleet) evaluation
    # ------------------------------------------------------------------ #
    @property
    def supports_batch(self) -> bool:
        """Whether the batched fleet kernels could be generated."""
        return self._derivs_batch is not None

    def derivs_batch(
        self,
        t,
        X: np.ndarray,
        U: np.ndarray,
        P: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate the state derivatives of a whole fleet in one call.

        Parameters
        ----------
        t:
            Scalar time shared by all rows, or an ``(N,)`` vector of per-row
            times (adaptive batch solvers advance rows independently).
        X / U / P:
            ``(N, n_states)`` states, ``(N, n_inputs)`` inputs and
            ``(N, n_params)`` parameters, one row per instance.
        out:
            Optional ``(N, n_states)`` result buffer.

        Division by zero follows numpy semantics (``inf``/``nan`` elements)
        except for integer-constant divisions, which raise
        :class:`ZeroDivisionError` exactly like the scalar kernels.
        """
        if out is None:
            out = np.empty_like(X)
        return self._derivs_batch(t, X, U, P, out)

    def outputs_batch(
        self,
        times: np.ndarray,
        states: np.ndarray,
        inputs: np.ndarray,
        P: np.ndarray,
    ) -> List[Dict[str, np.ndarray]]:
        """Evaluate all output equations over a whole fleet x grid in one pass.

        Parameters
        ----------
        times:
            1-D array of the n output times (shared by every row).
        states:
            ``(N, n, n_states)`` per-row state trajectories.
        inputs:
            ``(N, n, n_inputs)`` per-row input trajectories.
        P:
            ``(N, n_params)`` per-row parameter values in kernel order.

        Returns one ``{output name: (n,) trajectory}`` dict per row.  Rows
        whose vectorized evaluation produced non-finite values are re-run
        through the per-instance :meth:`outputs` path so error behaviour
        (and legitimate infinities) match the scalar semantics.
        """
        times = np.asarray(times, dtype=float)
        n_rows, n_times = states.shape[0], states.shape[1]
        flat_t = np.tile(times, n_rows)
        flat_x = np.ascontiguousarray(states).reshape(n_rows * n_times, states.shape[2])
        flat_u = np.ascontiguousarray(inputs).reshape(n_rows * n_times, inputs.shape[2])
        flat_p = np.repeat(np.asarray(P, dtype=float), n_times, axis=0)
        with np.errstate(all="ignore"):
            values = self._outputs_batch(flat_t, flat_x, flat_u, flat_p, flat_t.shape[0])
        if any(not np.isfinite(column).all() for column in values):
            return [
                self.outputs(times, states[r], inputs[r], P[r])
                for r in range(n_rows)
            ]
        columns = [column.reshape(n_rows, n_times) for column in values]
        # Copies, not views: a row slice would pin the whole fleet x grid
        # column in memory through its .base.
        return [
            dict(zip(self.output_names, (column[r].copy() for column in columns)))
            for r in range(n_rows)
        ]

    def _outputs_pointwise(
        self,
        times: np.ndarray,
        states: np.ndarray,
        inputs: np.ndarray,
        p: Sequence[float],
    ) -> Dict[str, np.ndarray]:
        columns = [np.empty(times.shape[0]) for _ in self.output_names]
        outputs_scalar = self._outputs_scalar
        for k in range(times.shape[0]):
            values = outputs_scalar(times[k], states[k], inputs[k], p)
            for column, value in zip(columns, values):
                column[k] = value
        return dict(zip(self.output_names, columns))

    def division_error(self) -> FmuFormatError:
        """The error callers raise when a kernel hit a ZeroDivisionError.

        The kernel evaluates all equations in one generated body, so the
        offender is not pinpointed; the candidate equation texts are listed
        instead (shared by every wrap site, mirroring the interpreted path's
        per-equation message).
        """
        candidates = ", ".join(repr(text) for text in self._equation_texts)
        return FmuFormatError(
            f"model equations divided by zero during evaluation (one of: {candidates})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationKernel(states={self.state_names}, inputs={self.input_names}, "
            f"outputs={self.output_names}, parameters={self.parameter_names})"
        )


def build_kernel(system) -> Optional[SimulationKernel]:
    """Build a :class:`SimulationKernel` for ``system``, or None when any
    equation cannot be compiled (callers then keep the interpreted path)."""
    try:
        return SimulationKernel(system)
    except _NotCompilable:
        return None
