"""Reading and writing ``.fmu`` archive files.

An FMU is a zip archive.  Our archives follow the FMI layout as closely as
the pure-Python substitution allows:

* ``modelDescription.xml`` - variable metadata and default experiment.
* ``resources/equations.json`` - the :class:`~repro.fmi.dynamics.OdeSystem`
  payload standing in for the compiled binaries of a real FMU.
* ``documentation/source.mo`` - original Modelica source, when the archive
  was produced by :mod:`repro.modelica` (optional).
"""

from __future__ import annotations

import io
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.errors import FmuFormatError
from repro.fmi.dynamics import OdeSystem
from repro.fmi.model_description import ModelDescription

MODEL_DESCRIPTION_NAME = "modelDescription.xml"
EQUATIONS_NAME = "resources/equations.json"
SOURCE_NAME = "documentation/source.mo"

PathLike = Union[str, Path]


@dataclass
class FmuArchive:
    """An in-memory FMU: model description plus equation payload."""

    model_description: ModelDescription
    ode_system: OdeSystem
    source: Optional[str] = None

    def __post_init__(self):
        self._cross_check()

    def _cross_check(self) -> None:
        """Verify the description and the equations agree on variable names."""
        md_names = {v.name for v in self.model_description.variables}
        eq_names = self.ode_system.variable_names()
        missing = eq_names - md_names
        if missing:
            raise FmuFormatError(
                "equation payload declares variables missing from modelDescription.xml: "
                + ", ".join(sorted(missing))
            )

    # ------------------------------------------------------------------ #
    # zip I/O
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize the archive into FMU zip bytes."""
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(MODEL_DESCRIPTION_NAME, self.model_description.to_xml())
            zf.writestr(EQUATIONS_NAME, self.ode_system.to_json())
            if self.source is not None:
                zf.writestr(SOURCE_NAME, self.source)
        return buffer.getvalue()

    def write(self, path: PathLike) -> Path:
        """Write the archive to ``path`` (creating parent directories)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())
        return path

    @classmethod
    def from_bytes(cls, data: bytes) -> "FmuArchive":
        """Parse an FMU from zip bytes."""
        try:
            zf = zipfile.ZipFile(io.BytesIO(data))
        except zipfile.BadZipFile as exc:
            raise FmuFormatError(f"not a valid FMU archive: {exc}") from exc
        with zf:
            names = set(zf.namelist())
            if MODEL_DESCRIPTION_NAME not in names:
                raise FmuFormatError("FMU archive is missing modelDescription.xml")
            if EQUATIONS_NAME not in names:
                raise FmuFormatError(f"FMU archive is missing {EQUATIONS_NAME}")
            md = ModelDescription.from_xml(zf.read(MODEL_DESCRIPTION_NAME).decode("utf-8"))
            ode = OdeSystem.from_json(zf.read(EQUATIONS_NAME).decode("utf-8"))
            source = None
            if SOURCE_NAME in names:
                source = zf.read(SOURCE_NAME).decode("utf-8")
        return cls(model_description=md, ode_system=ode, source=source)

    @classmethod
    def read(cls, path: PathLike) -> "FmuArchive":
        """Read an FMU archive from disk."""
        path = Path(path)
        if not path.exists():
            raise FmuFormatError(f"FMU file does not exist: {path}")
        return cls.from_bytes(path.read_bytes())

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    @property
    def guid(self) -> str:
        return self.model_description.guid

    @property
    def model_name(self) -> str:
        return self.model_description.model_name


def dump_fmu(archive: FmuArchive, path: PathLike) -> Path:
    """Write an :class:`FmuArchive` to ``path`` and return the path."""
    return archive.write(path)


def read_fmu(path: PathLike) -> FmuArchive:
    """Read an :class:`FmuArchive` from a ``.fmu`` file."""
    return FmuArchive.read(path)
