"""FMU runtime model: instantiate, set/get variables, simulate.

:class:`FmuModel` mirrors the part of PyFMI's ``FMUModelCS2``/``FMUModelME2``
surface that pgFMU uses: loading an FMU, listing model variables, reading and
writing start values, and simulating with externally supplied input time
series.
"""

from __future__ import annotations

import bisect
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.cancellation import check_active
from repro.errors import FmuStateError, FmuVariableError, SimulationInputError, SolverError
from repro.fmi.archive import FmuArchive, read_fmu
from repro.fmi.dynamics import OdeSystem
from repro.fmi.model_description import ModelDescription
from repro.fmi.results import SimulationResult
from repro.fmi.variables import Causality, ScalarVariable
from repro.solvers import get_solver
from repro.solvers.base import BatchOdeProblem, OdeProblem

PathLike = Union[str, Path]

#: An input series is a pair of equal-length sequences (times, values).
InputSeries = Tuple[Sequence[float], Sequence[float]]


class _InputInterpolator:
    """Piecewise-linear interpolation of named input time series."""

    def __init__(self, series: Mapping[str, InputSeries]):
        self._series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for name, (times, values) in series.items():
            t = np.asarray(list(times), dtype=float)
            v = np.asarray(list(values), dtype=float)
            if t.ndim != 1 or v.ndim != 1 or len(t) != len(v):
                raise SimulationInputError(
                    f"input series for {name!r} must be two equal-length 1-D sequences"
                )
            if len(t) == 0:
                raise SimulationInputError(f"input series for {name!r} is empty")
            if np.any(np.diff(t) < 0):
                order = np.argsort(t, kind="stable")
                t, v = t[order], v[order]
            self._series[name] = (t, v)

    def names(self) -> Iterable[str]:
        return self._series.keys()

    def time_span(self) -> Optional[Tuple[float, float]]:
        """Overall (min, max) time covered by the supplied series, if any."""
        if not self._series:
            return None
        starts = [t[0] for t, _ in self._series.values()]
        ends = [t[-1] for t, _ in self._series.values()]
        return min(starts), max(ends)

    def __call__(self, t: float) -> Dict[str, float]:
        values = {}
        for name, (times, series) in self._series.items():
            values[name] = float(np.interp(t, times, series))
        return values


class _KernelBindings:
    """Inputs and parameters bound once per ``simulate`` call into the
    compiled kernel's positional layout.

    The solver's right-hand side then only performs a clamped piecewise-linear
    interpolation per bound series (plain-Python ``bisect``, which is much
    cheaper per step than a ``np.interp`` scalar call) and a single kernel
    invocation - no namespace dict, no per-step rebinding.
    """

    __slots__ = ("u", "series")

    def __init__(self, kernel, interp: _InputInterpolator, input_starts: Mapping[str, float]):
        # Constant start values fill the slots; measured series override them.
        self.u: List[float] = [
            float(input_starts.get(name, 0.0)) for name in kernel.input_names
        ]
        self.series: List[tuple] = []
        for slot, name in enumerate(kernel.input_names):
            pair = interp._series.get(name)
            if pair is not None:
                times, values = pair
                self.series.append((slot, times.tolist(), values.tolist(), times, values))

    def input_at(self, t: float) -> List[float]:
        """The input vector at time ``t`` (clamped like ``np.interp``)."""
        u = self.u
        for slot, times, values, _, _ in self.series:
            if t <= times[0]:
                u[slot] = values[0]
            elif t >= times[-1]:
                u[slot] = values[-1]
            else:
                i = bisect.bisect_right(times, t)
                t_lo, t_hi = times[i - 1], times[i]
                # Slope-first form: the exact floating-point operation order
                # of np.interp, so compiled and interpreted simulations see
                # bit-identical input values.
                slope = (values[i] - values[i - 1]) / (t_hi - t_lo)
                u[slot] = slope * (t - t_lo) + values[i - 1]
        return u

    def input_matrix(self, times: np.ndarray) -> np.ndarray:
        """The (n_times, n_inputs) input trajectory for vectorized outputs."""
        matrix = np.empty((len(times), len(self.u)))
        for slot, value in enumerate(self.u):
            matrix[:, slot] = value
        for slot, _, _, series_times, series_values in self.series:
            matrix[:, slot] = np.interp(times, series_times, series_values)
        return matrix


class _BatchKernelBindings:
    """Fleet inputs bound once per ``simulate_batch`` call.

    Every instance of a fleet shares the measured input series (bound
    columns are identical across rows); per-instance input *start* values
    fill the unbound columns, one row per instance.  ``inputs_at`` follows
    the :class:`~repro.solvers.base.BatchOdeProblem` time contract: a
    scalar time fills each bound column with one interpolated value, an
    ``(N,)`` per-row time vector interpolates each row at its own time.
    """

    __slots__ = ("base", "series", "_buffer")

    def __init__(self, kernel, interp: _InputInterpolator, input_starts_per_row):
        n_rows = len(input_starts_per_row)
        self.base = np.empty((n_rows, kernel.n_inputs))
        for slot, name in enumerate(kernel.input_names):
            for row, starts in enumerate(input_starts_per_row):
                self.base[row, slot] = float(starts.get(name, 0.0))
        self.series: List[tuple] = []
        for slot, name in enumerate(kernel.input_names):
            pair = interp._series.get(name)
            if pair is not None:
                self.series.append((slot, pair[0], pair[1]))
        # One reusable (N, n_inputs) buffer: the kernel consumes the values
        # within the same rhs call, so per-stage reuse is safe.
        self._buffer = self.base.copy()

    def inputs_at(self, t) -> np.ndarray:
        """The ``(N, n_inputs)`` input matrix at time ``t`` (scalar or per-row)."""
        u = self._buffer
        for slot, times, values in self.series:
            u[:, slot] = np.interp(t, times, values)
        return u

    def restricted(self, rows: np.ndarray) -> "_BatchKernelBindings":
        """Bindings for a subset of the fleet's rows (active-set compaction).

        The measured series are shared by every row, so restriction only
        narrows the per-row start-value matrix; interpolation stays
        elementwise and therefore bit-identical for the kept rows.
        """
        sub = object.__new__(_BatchKernelBindings)
        sub.base = self.base[rows]
        sub.series = self.series
        sub._buffer = sub.base.copy()
        return sub

    def input_tensor(self, grid: np.ndarray) -> np.ndarray:
        """The ``(N, n_grid, n_inputs)`` input trajectories for vectorized outputs."""
        n_rows = self.base.shape[0]
        tensor = np.repeat(self.base[:, None, :], len(grid), axis=1)
        for slot, times, values in self.series:
            tensor[:, :, slot] = np.interp(grid, times, values)[None, :]
        return tensor


class FmuModel:
    """A loaded, instantiable FMU.

    Parameters
    ----------
    archive:
        The parsed :class:`FmuArchive`.
    instance_name:
        Optional instance label (mirrors the FMI ``instantiate`` argument).
    """

    def __init__(self, archive: FmuArchive, instance_name: Optional[str] = None):
        self._archive = archive
        self.instance_name = instance_name or archive.model_name
        self._parameter_values: Dict[str, float] = {}
        self._state_starts: Dict[str, float] = {}
        self._input_starts: Dict[str, float] = {}
        self._instantiated = True
        self.reset()

    # ------------------------------------------------------------------ #
    # Metadata access
    # ------------------------------------------------------------------ #
    @property
    def archive(self) -> FmuArchive:
        return self._archive

    @property
    def model_description(self) -> ModelDescription:
        return self._archive.model_description

    @property
    def ode_system(self) -> OdeSystem:
        return self._archive.ode_system

    @property
    def guid(self) -> str:
        return self._archive.guid

    @property
    def model_name(self) -> str:
        return self._archive.model_name

    def get_model_variables(self) -> Dict[str, ScalarVariable]:
        """All scalar variables keyed by name (PyFMI-compatible shape)."""
        return {v.name: v for v in self.model_description.variables}

    def parameter_names(self) -> list:
        """Names of estimable parameters (causality ``parameter``)."""
        return [v.name for v in self.model_description.parameters]

    def input_names(self) -> list:
        return [v.name for v in self.model_description.inputs]

    def output_names(self) -> list:
        return [v.name for v in self.model_description.outputs]

    def state_names(self) -> list:
        return list(self.ode_system.state_names)

    # ------------------------------------------------------------------ #
    # Value access
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Restore all start values from the model description."""
        self._parameter_values = dict(self.ode_system.parameters)
        for var in self.model_description.parameters:
            if var.start is not None:
                self._parameter_values[var.name] = float(var.start)
        self._state_starts = {s.name: float(s.start) for s in self.ode_system.states}
        for var in self.model_description.variables:
            if var.is_state and var.start is not None:
                self._state_starts[var.name] = float(var.start)
        self._input_starts = {
            v.name: float(v.start) if v.start is not None else 0.0
            for v in self.model_description.inputs
        }

    def get(self, name: str) -> float:
        """Read the current start/parameter value of a variable."""
        if name in self._parameter_values:
            return self._parameter_values[name]
        if name in self._state_starts:
            return self._state_starts[name]
        if name in self._input_starts:
            return self._input_starts[name]
        var = self.model_description.variable(name)
        if var.start is None:
            raise FmuVariableError(f"variable {name!r} has no start value to read")
        return float(var.start)

    def set(self, name: str, value: float) -> None:
        """Set a parameter, state start value, or input start value."""
        var = self.model_description.variable(name)
        value = float(value)
        if var.is_parameter:
            self._parameter_values[name] = value
        elif var.is_input:
            self._input_starts[name] = value
        elif name in self._state_starts or var.is_state:
            self._state_starts[name] = value
        else:
            raise FmuStateError(
                f"variable {name!r} has causality {var.causality.value!r} and "
                "cannot be assigned a value"
            )

    def set_many(self, values: Mapping[str, float]) -> None:
        """Set several variables at once."""
        for name, value in values.items():
            self.set(name, value)

    def parameters(self) -> Dict[str, float]:
        """Snapshot of current parameter values."""
        return dict(self._parameter_values)

    def clone(self, instance_name: Optional[str] = None) -> "FmuModel":
        """A new instance of the same archive carrying this instance's
        current parameter, state-start and input-start values.

        Cloning shares the archive (and therefore the compiled kernel) -
        only the per-instance value dictionaries are copied.  The
        estimation layer uses this to stage a whole population of candidate
        parameter vectors as a fleet for :meth:`simulate_batch`.
        """
        twin = FmuModel(self._archive, instance_name=instance_name or self.instance_name)
        twin._parameter_values = dict(self._parameter_values)
        twin._state_starts = dict(self._state_starts)
        twin._input_starts = dict(self._input_starts)
        return twin

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        inputs: Optional[Mapping[str, InputSeries]] = None,
        start_time: Optional[float] = None,
        stop_time: Optional[float] = None,
        output_step: Optional[float] = None,
        output_times: Optional[Sequence[float]] = None,
        solver: str = "rk45",
        solver_options: Optional[dict] = None,
    ) -> SimulationResult:
        """Simulate the model and return trajectories of states and outputs.

        Parameters
        ----------
        inputs:
            Mapping from input variable name to ``(times, values)`` series.
            Missing inputs default to their start value, held constant.
        start_time / stop_time:
            Simulation window.  Defaults come from the supplied input series
            when present, otherwise from the FMU's default experiment.
        output_step:
            Spacing of the reported output grid; defaults to the default
            experiment step size or 1/100 of the window.
        output_times:
            Explicit output grid (overrides ``output_step``).
        solver / solver_options:
            Solver registry name and constructor options.
        """
        if not self._instantiated:
            raise FmuStateError("the FMU instance has been terminated")
        check_active()

        interp = self._build_interpolator(inputs or {})
        t0, t1 = self._resolve_window(interp, start_time, stop_time)
        grid = self._resolve_grid(t0, t1, output_step, output_times)

        parameter_values = dict(self._parameter_values)
        system = self.ode_system
        kernel = system.kernel if system.compiled_enabled else None

        if kernel is not None:
            # Compiled fast path: inputs and parameters are bound to the
            # kernel's positional layout once per call, not once per step.
            bindings = _KernelBindings(kernel, interp, self._input_starts)
            p = kernel.parameter_vector(parameter_values)
            n_states = kernel.n_states
            kernel_derivs = kernel._derivs
            input_at = bindings.input_at

            def rhs(t, x, _u):
                try:
                    return kernel_derivs(t, x, input_at(t), p, np.empty(n_states))
                except ZeroDivisionError:
                    raise kernel.division_error() from None

        else:

            def input_values_at(t: float) -> Dict[str, float]:
                values = dict(self._input_starts)
                values.update(interp(t))
                return values

            def rhs(t, x, _u):
                return system.derivatives(t, x, input_values_at(t), parameter_values)

        injector = faults.active_injector()
        if injector is not None:
            # Chaos mode only: route every rhs evaluation through the
            # ``kernel.eval`` fault point (zero cost when no injector is
            # installed - this wrapper does not exist).
            inner_rhs = rhs

            def rhs(t, x, _u):  # noqa: F811 - deliberate chaos-mode shadow
                injector.check_point("kernel.eval")
                return inner_rhs(t, x, _u)

        x0 = np.array(
            [self._state_starts[name] for name in system.state_names], dtype=float
        )
        problem = OdeProblem(rhs=rhs, x0=x0, t0=t0, t1=t1)
        options = dict(solver_options or {})
        solution = get_solver(solver, **options).solve(problem, output_times=grid)

        trajectories: Dict[str, np.ndarray] = {}
        for i, name in enumerate(system.state_names):
            trajectories[name] = solution.states[:, i]
        if kernel is not None:
            # Output equations evaluated over the whole trajectory in one
            # vectorized pass instead of one namespace + eval per time step.
            inputs_matrix = bindings.input_matrix(solution.times)
            try:
                trajectories.update(
                    kernel.outputs(solution.times, solution.states, inputs_matrix, p)
                )
            except ZeroDivisionError:
                raise kernel.division_error() from None
        else:
            outputs = {name: np.empty(len(solution.times)) for name in system.output_names}
            for k, t in enumerate(solution.times):
                out = system.evaluate_outputs(
                    t, solution.states[k], input_values_at(t), parameter_values
                )
                for name, value in out.items():
                    outputs[name][k] = value
            trajectories.update(outputs)
        for name in interp.names():
            series_times, series_values = interp._series[name]
            trajectories[name] = np.interp(solution.times, series_times, series_values)

        return SimulationResult(
            time=solution.times,
            trajectories=trajectories,
            solver_stats={
                "solver": solution.solver_name,
                "n_rhs_evals": solution.n_rhs_evals,
                "n_steps": solution.n_steps,
                "n_rejected": solution.n_rejected,
            },
        )

    @staticmethod
    def simulate_batch(
        models: Sequence["FmuModel"],
        inputs: Optional[Mapping[str, InputSeries]] = None,
        start_time: Optional[float] = None,
        stop_time: Optional[float] = None,
        output_step: Optional[float] = None,
        output_times: Optional[Sequence[float]] = None,
        solver: str = "rk45",
        solver_options: Optional[dict] = None,
        sequential_fallback: bool = True,
    ) -> List[SimulationResult]:
        """Simulate a fleet of instances of **one** model in a single batched pass.

        All ``models`` must wrap the same FMU archive (they are the fleet's
        instances: same equations, per-instance parameter/start values) and
        share the input series and simulation window.  The fleet's states
        are stacked into an ``(N, d)`` matrix and integrated through one
        numpy-vectorized right-hand side
        (:meth:`~repro.fmi.kernel.SimulationKernel.derivs_batch` via
        :meth:`~repro.solvers.base.OdeSolver.solve_batch`): parameters are
        bound once per call as an ``(N, n_p)`` matrix and output equations
        are evaluated vectorized over the whole fleet x grid.

        Results are returned in ``models`` order and agree with per-instance
        :meth:`simulate` calls to floating-point rounding (the adaptive RK45
        batch solver controls errors per row, so every row walks the same
        step sequence the sequential solver would).

        Falls back to sequential per-instance :meth:`simulate` calls when
        the fleet cannot batch - no compiled kernel
        (``compiled_enabled=False`` or non-compilable equations), a kernel
        whose equations resist the vectorized lowering
        (``supports_batch=False``), or a batched integration that fails
        mid-flight (divergence, step-limit): the sequential rerun then
        reproduces the exact per-instance error semantics.

        ``sequential_fallback=False`` suppresses only the *mid-flight* rerun:
        a :class:`~repro.errors.SolverError` from the batched integration
        propagates immediately instead of re-simulating every instance.
        Callers that score fleets where individual rows are *expected* to
        diverge (the estimation layer's candidate populations) use this to
        bisect the fleet themselves rather than pay a full sequential pass
        per failure.  The non-batchable fallbacks above are unaffected.
        """
        models = list(models)
        if not models:
            return []
        lead = models[0]
        for model in models:
            if model._archive.guid != lead._archive.guid:
                raise SimulationInputError(
                    "simulate_batch requires instances of one model; got "
                    f"{model.model_name!r} (guid {model.guid!r}) alongside "
                    f"{lead.model_name!r} (guid {lead.guid!r})"
                )
            if not model._instantiated:
                raise FmuStateError("the FMU instance has been terminated")

        check_active()
        interp = lead._build_interpolator(inputs or {})
        t0, t1 = lead._resolve_window(interp, start_time, stop_time)
        grid = lead._resolve_grid(t0, t1, output_step, output_times)

        def simulate_sequentially() -> List[SimulationResult]:
            return [
                model.simulate(
                    inputs=inputs,
                    start_time=start_time,
                    stop_time=stop_time,
                    output_step=output_step,
                    output_times=output_times,
                    solver=solver,
                    solver_options=solver_options,
                )
                for model in models
            ]

        system = lead.ode_system
        kernel = system.kernel if system.compiled_enabled else None
        if kernel is None or not kernel.supports_batch:
            return simulate_sequentially()

        # Bind the whole fleet once: per-row parameter matrix, per-row input
        # start values overlaid with the shared measured series, stacked
        # initial states.
        bindings = _BatchKernelBindings(
            kernel, interp, [model._input_starts for model in models]
        )
        P = kernel.parameter_matrix([model._parameter_values for model in models])
        x0 = np.array(
            [
                [model._state_starts[name] for name in system.state_names]
                for model in models
            ],
            dtype=float,
        )
        kernel_derivs_batch = kernel._derivs_batch

        def rhs(t, X, U):
            try:
                return kernel_derivs_batch(t, X, U, P, np.empty_like(X))
            except ZeroDivisionError:
                raise kernel.division_error() from None

        injector = faults.active_injector()
        if injector is not None:
            inner_batch_rhs = rhs

            def rhs(t, X, U):  # noqa: F811 - deliberate chaos-mode shadow
                injector.check_point("kernel.eval")
                return inner_batch_rhs(t, X, U)

        def restrict(rows):
            # Active-set compaction support: the adaptive batch solver drops
            # finished rows, so the rhs/inputs must re-bind to the survivors
            # (row-sliced parameter matrix and start values; the kernel is
            # elementwise over rows, so the kept rows' values are bit-exact).
            P_rows = P[rows]
            sub_bindings = bindings.restricted(rows)

            def rhs_rows(t, X, U):
                try:
                    return kernel_derivs_batch(t, X, U, P_rows, np.empty_like(X))
                except ZeroDivisionError:
                    raise kernel.division_error() from None

            return rhs_rows, sub_bindings.inputs_at

        try:
            problem = BatchOdeProblem(
                rhs=rhs, x0=x0, t0=t0, t1=t1, inputs=bindings.inputs_at,
                restrict=restrict,
            )
            options = dict(solver_options or {})
            solution = get_solver(solver, **options).solve_batch(
                problem, output_times=grid
            )
        except SolverError:
            # Rerun sequentially so the error (divergence, step limit) is
            # reported with the exact per-instance message and semantics.
            if not sequential_fallback:
                raise
            return simulate_sequentially()

        # Vectorized outputs over the whole fleet x grid in one pass.
        input_tensor = bindings.input_tensor(solution.times)
        states = np.ascontiguousarray(solution.states.swapaxes(0, 1))
        try:
            output_rows = kernel.outputs_batch(solution.times, states, input_tensor, P)
        except ZeroDivisionError:
            raise kernel.division_error() from None

        measured: Dict[str, np.ndarray] = {}
        for name in interp.names():
            series_times, series_values = interp._series[name]
            measured[name] = np.interp(solution.times, series_times, series_values)

        results: List[SimulationResult] = []
        for row, model in enumerate(models):
            trajectories: Dict[str, np.ndarray] = {}
            for j, name in enumerate(system.state_names):
                # Copy the column out of the (n, N, d) fleet tensor so one
                # retained result does not pin the whole fleet's solution.
                trajectories[name] = solution.states[:, row, j].copy()
            trajectories.update(output_rows[row])
            for name, values in measured.items():
                trajectories[name] = values.copy()
            results.append(
                SimulationResult(
                    time=solution.times,
                    trajectories=trajectories,
                    solver_stats={
                        "solver": solution.solver_name,
                        "n_rhs_evals": solution.n_rhs_evals,
                        "n_steps": int(solution.n_steps[row]),
                        "n_rejected": int(solution.n_rejected[row]),
                        "batched": True,
                        "fleet_size": len(models),
                    },
                )
            )
        return results

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _build_interpolator(self, inputs: Mapping[str, InputSeries]) -> _InputInterpolator:
        known_inputs = set(self.input_names())
        unknown = set(inputs) - known_inputs
        if unknown:
            raise SimulationInputError(
                f"model {self.model_name!r} has no input variables named: "
                + ", ".join(sorted(unknown))
            )
        return _InputInterpolator(inputs)

    def _resolve_window(
        self,
        interp: _InputInterpolator,
        start_time: Optional[float],
        stop_time: Optional[float],
    ) -> Tuple[float, float]:
        experiment = self.model_description.default_experiment
        span = interp.time_span()
        t0 = start_time if start_time is not None else (span[0] if span else experiment.start_time)
        t1 = stop_time if stop_time is not None else (span[1] if span else experiment.stop_time)
        t0, t1 = float(t0), float(t1)
        if t1 <= t0:
            raise SimulationInputError(
                f"invalid simulation window: stop_time {t1} must be greater than start_time {t0}"
            )
        return t0, t1

    def _resolve_grid(
        self,
        t0: float,
        t1: float,
        output_step: Optional[float],
        output_times: Optional[Sequence[float]],
    ) -> np.ndarray:
        if output_times is not None:
            grid = np.asarray(list(output_times), dtype=float)
            if grid.size == 0:
                raise SimulationInputError("output_times must not be empty")
            return grid
        step = output_step
        if step is None or step <= 0:
            default_step = self.model_description.default_experiment.step_size
            step = default_step if default_step and default_step > 0 else (t1 - t0) / 100.0
        n = max(2, int(round((t1 - t0) / step)) + 1)
        return np.linspace(t0, t1, n)

    def terminate(self) -> None:
        """Mark the instance as terminated (subsequent simulate calls fail)."""
        self._instantiated = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FmuModel(name={self.model_name!r}, guid={self.guid!r})"


def load_fmu(path_or_archive: Union[PathLike, FmuArchive], instance_name: Optional[str] = None) -> FmuModel:
    """Load an FMU file (or wrap an in-memory archive) into a runtime model.

    Mirrors PyFMI's ``load_fmu`` entry point.
    """
    if isinstance(path_or_archive, FmuArchive):
        return FmuModel(path_or_archive, instance_name=instance_name)
    return FmuModel(read_fmu(path_or_archive), instance_name=instance_name)
