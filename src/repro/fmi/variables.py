"""Scalar variable metadata as declared by ``modelDescription.xml``.

FMI 2.0 describes every exposed quantity of a model as a *scalar variable*
with a causality (parameter, input, output, local), a variability (constant,
fixed, tunable, discrete, continuous) and a declared type with optional
start/min/max attributes.  pgFMU's model catalogue (the ``ModelVariable``
table) is populated directly from this metadata, and the automatic data
binding of ``fmu_simulate``/``fmu_parest`` keys off causality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import FmuVariableError


class Causality(str, enum.Enum):
    """How a variable participates in the model interface."""

    PARAMETER = "parameter"
    INPUT = "input"
    OUTPUT = "output"
    LOCAL = "local"
    INDEPENDENT = "independent"

    @classmethod
    def parse(cls, text: str) -> "Causality":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise FmuVariableError(f"unknown causality: {text!r}") from None


class Variability(str, enum.Enum):
    """How a variable may change over simulation time."""

    CONSTANT = "constant"
    FIXED = "fixed"
    TUNABLE = "tunable"
    DISCRETE = "discrete"
    CONTINUOUS = "continuous"

    @classmethod
    def parse(cls, text: str) -> "Variability":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise FmuVariableError(f"unknown variability: {text!r}") from None


class VariableType(str, enum.Enum):
    """Declared type of a scalar variable."""

    REAL = "Real"
    INTEGER = "Integer"
    BOOLEAN = "Boolean"
    STRING = "String"

    @classmethod
    def parse(cls, text: str) -> "VariableType":
        normalized = text.strip().lower()
        for member in cls:
            if member.value.lower() == normalized:
                return member
        raise FmuVariableError(f"unknown variable type: {text!r}")

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to the Python representation of this type."""
        if value is None:
            return None
        if self is VariableType.REAL:
            return float(value)
        if self is VariableType.INTEGER:
            return int(value)
        if self is VariableType.BOOLEAN:
            if isinstance(value, str):
                return value.strip().lower() in ("true", "t", "1", "yes")
            return bool(value)
        return str(value)


@dataclass
class ScalarVariable:
    """One entry of the model description's ``ModelVariables`` section.

    Attributes
    ----------
    name:
        Variable name, unique within the model.
    causality / variability / var_type:
        FMI attributes controlling how the variable is used.
    start:
        Initial value (``start`` attribute in FMI).  For parameters this is
        the nominal value used unless overridden by the caller.
    minimum / maximum:
        Optional declared bounds; pgFMU's parameter estimation uses them as
        search-space bounds.
    description / unit:
        Free-text documentation attributes.
    value_reference:
        Integer handle, mirroring FMI value references; assigned by the
        model description when variables are registered.
    """

    name: str
    causality: Causality = Causality.LOCAL
    variability: Variability = Variability.CONTINUOUS
    var_type: VariableType = VariableType.REAL
    start: Optional[Any] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    description: str = ""
    unit: str = ""
    value_reference: int = field(default=-1)

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise FmuVariableError(f"invalid variable name: {self.name!r}")
        if isinstance(self.causality, str):
            self.causality = Causality.parse(self.causality)
        if isinstance(self.variability, str):
            self.variability = Variability.parse(self.variability)
        if isinstance(self.var_type, str):
            self.var_type = VariableType.parse(self.var_type)
        if self.start is not None:
            self.start = self.var_type.coerce(self.start)
        if self.minimum is not None:
            self.minimum = float(self.minimum)
        if self.maximum is not None:
            self.maximum = float(self.maximum)
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise FmuVariableError(
                f"variable {self.name!r}: minimum {self.minimum} exceeds maximum {self.maximum}"
            )

    @property
    def is_parameter(self) -> bool:
        """True if the variable is an estimable/tunable model parameter."""
        return self.causality is Causality.PARAMETER

    @property
    def is_input(self) -> bool:
        return self.causality is Causality.INPUT

    @property
    def is_output(self) -> bool:
        return self.causality is Causality.OUTPUT

    @property
    def is_state(self) -> bool:
        """True for continuous local variables, which we treat as states."""
        return (
            self.causality is Causality.LOCAL
            and self.variability is Variability.CONTINUOUS
        )

    def to_dict(self) -> dict:
        """Serialize to a plain dict (used by both XML and JSON writers)."""
        return {
            "name": self.name,
            "causality": self.causality.value,
            "variability": self.variability.value,
            "type": self.var_type.value,
            "start": self.start,
            "min": self.minimum,
            "max": self.maximum,
            "description": self.description,
            "unit": self.unit,
            "valueReference": self.value_reference,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScalarVariable":
        """Deserialize from the dict produced by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            causality=data.get("causality", "local"),
            variability=data.get("variability", "continuous"),
            var_type=data.get("type", "Real"),
            start=data.get("start"),
            minimum=data.get("min"),
            maximum=data.get("max"),
            description=data.get("description", ""),
            unit=data.get("unit", ""),
            value_reference=int(data.get("valueReference", -1)),
        )
