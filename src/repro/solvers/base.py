"""Common solver abstractions: problem description, solution container, base class."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError

RhsFunction = Callable[[float, np.ndarray, np.ndarray], np.ndarray]
InputFunction = Callable[[float], np.ndarray]


@dataclass
class OdeProblem:
    """An initial value problem ``x' = f(t, x, u(t))`` on ``[t0, t1]``.

    Attributes
    ----------
    rhs:
        Right-hand side callable ``f(t, x, u) -> dx/dt``.
    x0:
        Initial state vector at ``t0``.
    t0, t1:
        Integration interval.  ``t1`` must be strictly greater than ``t0``.
    inputs:
        Optional callable mapping time to the input vector ``u(t)``.  When
        omitted a zero-length input vector is passed to ``rhs``.
    """

    rhs: RhsFunction
    x0: np.ndarray
    t0: float
    t1: float
    inputs: Optional[InputFunction] = None

    def __post_init__(self):
        self.x0 = np.atleast_1d(np.asarray(self.x0, dtype=float))
        if not np.isfinite(self.x0).all():
            raise SolverError("initial state contains non-finite values")
        if not (self.t1 > self.t0):
            raise SolverError(
                f"invalid integration interval: t1={self.t1} must be > t0={self.t0}"
            )

    def input_at(self, t: float) -> np.ndarray:
        """Evaluate the input vector at time ``t`` (empty vector if no inputs)."""
        if self.inputs is None:
            return np.empty(0)
        return np.atleast_1d(np.asarray(self.inputs(t), dtype=float))


@dataclass
class OdeSolution:
    """Dense solver output: state trajectory sampled at ``times``.

    The solution also records solver statistics that the FMI runtime exposes
    to callers (number of right-hand-side evaluations and accepted/rejected
    steps) so benchmarks can reason about solver cost.
    """

    times: np.ndarray
    states: np.ndarray
    n_rhs_evals: int = 0
    n_steps: int = 0
    n_rejected: int = 0
    solver_name: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim == 1:
            self.states = self.states.reshape(-1, 1)
        if len(self.times) != len(self.states):
            raise SolverError(
                "solution times and states have mismatched lengths: "
                f"{len(self.times)} vs {len(self.states)}"
            )

    @property
    def final_state(self) -> np.ndarray:
        """State vector at the final time point."""
        return self.states[-1]

    def interpolate(self, t: float) -> np.ndarray:
        """Linearly interpolate the state at an arbitrary time ``t``.

        Times outside the solved interval are clamped to the boundary values,
        matching how co-simulation masters hold the last known state.
        """
        return self.sample(np.array([float(t)]))[0]

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Interpolate the state trajectory at each of the given times.

        Batch-interpolates every state column with ``np.interp`` (which
        clamps outside the solved interval) instead of stacking per-point
        interpolations.
        """
        query = np.asarray(times, dtype=float)
        sampled = np.empty((query.size, self.states.shape[1]))
        for j in range(self.states.shape[1]):
            sampled[:, j] = np.interp(query, self.times, self.states[:, j])
        return sampled


def _stage_function(problem: "OdeProblem"):
    """The solver-facing right-hand side: inputs resolved, result coerced.

    Hoists the per-step overheads out of the stage evaluation: input-less
    problems share one empty input vector, and the float-vector coercion is
    skipped when the rhs already returns a 1-D float array (the compiled
    kernel path always does).
    """
    empty_u = np.empty(0)
    has_inputs = problem.inputs is not None
    rhs = problem.rhs
    input_at = problem.input_at

    def f(t, x):
        u = input_at(t) if has_inputs else empty_u
        dx = rhs(t, x, u)
        if isinstance(dx, np.ndarray) and dx.ndim == 1 and dx.dtype == np.float64:
            return dx
        return np.atleast_1d(np.asarray(dx, dtype=float))

    return f


class TrajectoryRecorder:
    """Preallocated, geometrically grown storage for solver main loops.

    Replaces the per-step ``times.append(t); states.append(x.copy())`` lists:
    values are written into contiguous numpy buffers that double in size when
    full, so a solve costs O(log n) allocations instead of one per step.
    """

    __slots__ = ("_times", "_states", "_count")

    def __init__(self, n_states: int, capacity: int = 512):
        capacity = max(2, int(capacity))
        self._times = np.empty(capacity)
        self._states = np.empty((capacity, int(n_states)))
        self._count = 0

    def append(self, t: float, x: np.ndarray) -> None:
        n = self._count
        if n == self._times.shape[0]:
            grown_times = np.empty(2 * n)
            grown_times[:n] = self._times
            self._times = grown_times
            grown_states = np.empty((2 * n, self._states.shape[1]))
            grown_states[:n] = self._states
            self._states = grown_states
        self._times[n] = t
        self._states[n] = x
        self._count = n + 1

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The recorded ``(times, states)`` trimmed to the written length."""
        return self._times[: self._count], self._states[: self._count]


class OdeSolver:
    """Base class for ODE solvers.

    Subclasses implement :meth:`solve` and set :attr:`name`.  Construction
    options common to all solvers are the output grid control parameters.
    """

    name = "base"

    def __init__(self, max_step: Optional[float] = None):
        self.max_step = max_step

    def solve(self, problem: OdeProblem, output_times: Optional[Sequence[float]] = None) -> OdeSolution:
        """Integrate ``problem`` and return a dense :class:`OdeSolution`.

        Parameters
        ----------
        problem:
            The initial value problem to integrate.
        output_times:
            Optional monotone sequence of times at which the solution must be
            reported.  Solvers always include ``t0`` and ``t1``.
        """
        raise NotImplementedError

    def _normalized_output_times(
        self, problem: OdeProblem, output_times: Optional[Sequence[float]]
    ) -> np.ndarray:
        """Validate and normalize the requested output grid."""
        if output_times is None:
            return np.array([problem.t0, problem.t1])
        grid = np.asarray(list(output_times), dtype=float)
        if grid.size == 0:
            return np.array([problem.t0, problem.t1])
        if np.any(np.diff(grid) < 0):
            raise SolverError("output_times must be non-decreasing")
        if grid[0] > problem.t0:
            grid = np.concatenate(([problem.t0], grid))
        if grid[-1] < problem.t1:
            grid = np.concatenate((grid, [problem.t1]))
        return np.clip(grid, problem.t0, problem.t1)


def solve_ode(
    rhs: RhsFunction,
    x0,
    t0: float,
    t1: float,
    inputs: Optional[InputFunction] = None,
    solver: str = "rk45",
    output_times: Optional[Sequence[float]] = None,
    **options,
) -> OdeSolution:
    """Convenience wrapper: build an :class:`OdeProblem` and solve it.

    This is the entry point used by the FMI runtime and by tests that need a
    one-line integration call.
    """
    from repro.solvers import get_solver

    problem = OdeProblem(rhs=rhs, x0=x0, t0=t0, t1=t1, inputs=inputs)
    return get_solver(solver, **options).solve(problem, output_times=output_times)
