"""Common solver abstractions: problem description, solution container, base class."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import SolverError

RhsFunction = Callable[[float, np.ndarray, np.ndarray], np.ndarray]
InputFunction = Callable[[float], np.ndarray]


@dataclass
class OdeProblem:
    """An initial value problem ``x' = f(t, x, u(t))`` on ``[t0, t1]``.

    Attributes
    ----------
    rhs:
        Right-hand side callable ``f(t, x, u) -> dx/dt``.
    x0:
        Initial state vector at ``t0``.
    t0, t1:
        Integration interval.  ``t1`` must be strictly greater than ``t0``.
    inputs:
        Optional callable mapping time to the input vector ``u(t)``.  When
        omitted a zero-length input vector is passed to ``rhs``.
    """

    rhs: RhsFunction
    x0: np.ndarray
    t0: float
    t1: float
    inputs: Optional[InputFunction] = None

    def __post_init__(self):
        self.x0 = np.atleast_1d(np.asarray(self.x0, dtype=float))
        if not np.isfinite(self.x0).all():
            raise SolverError("initial state contains non-finite values")
        if not (self.t1 > self.t0):
            raise SolverError(
                f"invalid integration interval: t1={self.t1} must be > t0={self.t0}"
            )

    def input_at(self, t: float) -> np.ndarray:
        """Evaluate the input vector at time ``t`` (empty vector if no inputs)."""
        if self.inputs is None:
            return np.empty(0)
        return np.atleast_1d(np.asarray(self.inputs(t), dtype=float))


@dataclass
class OdeSolution:
    """Dense solver output: state trajectory sampled at ``times``.

    The solution also records solver statistics that the FMI runtime exposes
    to callers (number of right-hand-side evaluations and accepted/rejected
    steps) so benchmarks can reason about solver cost.
    """

    times: np.ndarray
    states: np.ndarray
    n_rhs_evals: int = 0
    n_steps: int = 0
    n_rejected: int = 0
    solver_name: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim == 1:
            self.states = self.states.reshape(-1, 1)
        if len(self.times) != len(self.states):
            raise SolverError(
                "solution times and states have mismatched lengths: "
                f"{len(self.times)} vs {len(self.states)}"
            )

    @property
    def final_state(self) -> np.ndarray:
        """State vector at the final time point."""
        return self.states[-1]

    def interpolate(self, t: float) -> np.ndarray:
        """Linearly interpolate the state at an arbitrary time ``t``.

        Times outside the solved interval are clamped to the boundary values,
        matching how co-simulation masters hold the last known state.
        """
        t = float(t)
        if t <= self.times[0]:
            return self.states[0].copy()
        if t >= self.times[-1]:
            return self.states[-1].copy()
        idx = int(np.searchsorted(self.times, t))
        t_lo, t_hi = self.times[idx - 1], self.times[idx]
        if t_hi == t_lo:
            return self.states[idx].copy()
        w = (t - t_lo) / (t_hi - t_lo)
        return (1.0 - w) * self.states[idx - 1] + w * self.states[idx]

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Interpolate the state trajectory at each of the given times."""
        return np.vstack([self.interpolate(t) for t in times])


class OdeSolver:
    """Base class for ODE solvers.

    Subclasses implement :meth:`solve` and set :attr:`name`.  Construction
    options common to all solvers are the output grid control parameters.
    """

    name = "base"

    def __init__(self, max_step: Optional[float] = None):
        self.max_step = max_step

    def solve(self, problem: OdeProblem, output_times: Optional[Sequence[float]] = None) -> OdeSolution:
        """Integrate ``problem`` and return a dense :class:`OdeSolution`.

        Parameters
        ----------
        problem:
            The initial value problem to integrate.
        output_times:
            Optional monotone sequence of times at which the solution must be
            reported.  Solvers always include ``t0`` and ``t1``.
        """
        raise NotImplementedError

    def _normalized_output_times(
        self, problem: OdeProblem, output_times: Optional[Sequence[float]]
    ) -> np.ndarray:
        """Validate and normalize the requested output grid."""
        if output_times is None:
            return np.array([problem.t0, problem.t1])
        grid = np.asarray(list(output_times), dtype=float)
        if grid.size == 0:
            return np.array([problem.t0, problem.t1])
        if np.any(np.diff(grid) < 0):
            raise SolverError("output_times must be non-decreasing")
        if grid[0] > problem.t0:
            grid = np.concatenate(([problem.t0], grid))
        if grid[-1] < problem.t1:
            grid = np.concatenate((grid, [problem.t1]))
        return np.clip(grid, problem.t0, problem.t1)


def solve_ode(
    rhs: RhsFunction,
    x0,
    t0: float,
    t1: float,
    inputs: Optional[InputFunction] = None,
    solver: str = "rk45",
    output_times: Optional[Sequence[float]] = None,
    **options,
) -> OdeSolution:
    """Convenience wrapper: build an :class:`OdeProblem` and solve it.

    This is the entry point used by the FMI runtime and by tests that need a
    one-line integration call.
    """
    from repro.solvers import get_solver

    problem = OdeProblem(rhs=rhs, x0=x0, t0=t0, t1=t1, inputs=inputs)
    return get_solver(solver, **options).solve(problem, output_times=output_times)
