"""Common solver abstractions: problem description, solution containers, base class.

Two problem shapes are supported:

* :class:`OdeProblem` - one instance, state vector ``x`` of length ``d``,
  solved by :meth:`OdeSolver.solve`.
* :class:`BatchOdeProblem` - a *fleet* of ``N`` instances stacked into an
  ``(N, d)`` state matrix sharing one integration window, solved by
  :meth:`OdeSolver.solve_batch`.  The right-hand side is evaluated once per
  step for the whole fleet (one numpy-vectorized call instead of ``N``
  scalar ones); the concrete solvers override ``solve_batch`` with matrix
  stepping, and the base class provides a row-by-row fallback so any solver
  can integrate a batch problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.cancellation import active_token
from repro.errors import SolverError

#: Solver step loops poll the deadline token / chaos injector once every
#: this many iterations.  Sparse enough that the inactive case costs a
#: single boolean test per step (measured <=2% on the kernel benchmark),
#: frequent enough that a runaway integration stops within milliseconds.
_CHECK_INTERVAL = 64


def _step_guard():
    """``(token, injector, watch)`` for a solver main loop.

    Captured once at loop entry; ``watch`` is False in ordinary runs, so
    the per-step cost collapses to one branch.  See the loop bodies: every
    ``_CHECK_INTERVAL``-th step with a watcher installed calls
    :func:`_check_step`.
    """
    token = active_token()
    injector = faults.active_injector()
    return token, injector, token is not None or injector is not None


def _check_step(token, injector) -> None:
    if token is not None:
        token.check()
    if injector is not None:
        injector.check_point("solver.step")


RhsFunction = Callable[[float, np.ndarray, np.ndarray], np.ndarray]
InputFunction = Callable[[float], np.ndarray]
#: Batched right-hand side ``F(t, X, U) -> (N, d)``; ``t`` is a scalar shared
#: by all rows or an ``(N,)`` per-row time vector.
BatchRhsFunction = Callable[[object, np.ndarray, np.ndarray], np.ndarray]
#: Batched input function ``U(t) -> (N, n_u)`` under the same time contract.
BatchInputFunction = Callable[[object], np.ndarray]
#: Row-restriction factory: given the original row indices to keep, return
#: ``(rhs, inputs)`` callables bound to just those rows (``inputs`` may be
#: ``None``).  Lets adaptive batch solvers drop finished rows from the
#: working set instead of evaluating and discarding them.
RestrictFunction = Callable[[np.ndarray], Tuple[BatchRhsFunction, Optional[BatchInputFunction]]]


@dataclass
class OdeProblem:
    """An initial value problem ``x' = f(t, x, u(t))`` on ``[t0, t1]``.

    Attributes
    ----------
    rhs:
        Right-hand side callable ``f(t, x, u) -> dx/dt``.
    x0:
        Initial state vector at ``t0``.
    t0, t1:
        Integration interval.  ``t1`` must be strictly greater than ``t0``.
    inputs:
        Optional callable mapping time to the input vector ``u(t)``.  When
        omitted a zero-length input vector is passed to ``rhs``.
    """

    rhs: RhsFunction
    x0: np.ndarray
    t0: float
    t1: float
    inputs: Optional[InputFunction] = None

    def __post_init__(self):
        self.x0 = np.atleast_1d(np.asarray(self.x0, dtype=float))
        if not np.isfinite(self.x0).all():
            raise SolverError("initial state contains non-finite values")
        if not (self.t1 > self.t0):
            raise SolverError(
                f"invalid integration interval: t1={self.t1} must be > t0={self.t0}"
            )

    def input_at(self, t: float) -> np.ndarray:
        """Evaluate the input vector at time ``t`` (empty vector if no inputs)."""
        if self.inputs is None:
            return np.empty(0)
        return np.atleast_1d(np.asarray(self.inputs(t), dtype=float))


@dataclass
class BatchOdeProblem:
    """A fleet of initial value problems ``X' = F(t, X, U(t))`` on ``[t0, t1]``.

    All rows share the integration window and the input function; states,
    derivatives and inputs are matrices with one row per instance.

    Attributes
    ----------
    rhs:
        Batched right-hand side ``F(t, X, U) -> dX/dt`` over the ``(N, d)``
        state matrix.  ``t`` is a scalar when all rows are at the same time
        (fixed-step solvers) or an ``(N,)`` vector when rows advance
        independently (adaptive solvers).
    x0:
        ``(N, d)`` matrix of initial states.
    t0, t1:
        Shared integration interval; ``t1`` must be strictly greater.
    inputs:
        Optional callable mapping time (same scalar-or-vector contract as
        ``rhs``) to the ``(N, n_u)`` input matrix.  When omitted an empty
        ``(N, 0)`` matrix is passed to ``rhs``.
    restrict:
        Optional row-restriction factory ``restrict(rows) -> (rhs, inputs)``
        returning the right-hand side and input function bound to the given
        subset of fleet rows (original indices, in ascending order).  The
        batched ``rhs``/``inputs`` close over per-row data (parameter
        matrices, start values) at full fleet width, so the solver cannot
        narrow them itself; problems that supply this hook let the adaptive
        batch solver *compact its active set* - once rows reach ``t1`` they
        are dropped from the working matrices and the right-hand side is
        re-bound to the survivors, so a few stiff rows stop paying for the
        whole fleet.  Restriction must not change the arithmetic of the
        kept rows (the kernels are elementwise over rows, so slicing is
        bit-exact).  Without the hook, solvers evaluate at full width and
        discard finished rows' results, as before.
    """

    rhs: BatchRhsFunction
    x0: np.ndarray
    t0: float
    t1: float
    inputs: Optional[BatchInputFunction] = None
    restrict: Optional[RestrictFunction] = None

    def __post_init__(self):
        self.x0 = np.asarray(self.x0, dtype=float)
        if self.x0.ndim != 2:
            raise SolverError(
                f"batch initial state must be an (N, d) matrix, got shape {self.x0.shape}"
            )
        if self.x0.shape[0] == 0:
            raise SolverError("a batch problem needs at least one row")
        if not np.isfinite(self.x0).all():
            raise SolverError("batch initial state contains non-finite values")
        if not (self.t1 > self.t0):
            raise SolverError(
                f"invalid integration interval: t1={self.t1} must be > t0={self.t0}"
            )

    @property
    def n_rows(self) -> int:
        return self.x0.shape[0]

    @property
    def n_states(self) -> int:
        return self.x0.shape[1]

    def row_problem(self, row: int) -> "OdeProblem":
        """Row ``row`` as an independent scalar :class:`OdeProblem`.

        Used by the base-class ``solve_batch`` fallback.  The batched rhs
        may close over per-row data (parameter matrices), so it is always
        called at full fleet width: the candidate state is broadcast to
        every row and the requested row of the result is returned.  That
        costs ``N`` redundant row evaluations per call - acceptable for a
        correctness fallback, not a fast path.
        """
        rhs = self.rhs
        batch_inputs = self.inputs
        n_rows, n_states = self.n_rows, self.n_states
        empty_u = np.empty((n_rows, 0))

        def scalar_rhs(t: float, x: np.ndarray, _u: np.ndarray) -> np.ndarray:
            X = np.broadcast_to(x, (n_rows, n_states))
            U = batch_inputs(t) if batch_inputs is not None else empty_u
            return np.asarray(rhs(t, X, U), dtype=float)[row]

        return OdeProblem(
            rhs=scalar_rhs,
            x0=self.x0[row],
            t0=self.t0,
            t1=self.t1,
        )


@dataclass
class OdeSolution:
    """Dense solver output: state trajectory sampled at ``times``.

    The solution also records solver statistics that the FMI runtime exposes
    to callers (number of right-hand-side evaluations and accepted/rejected
    steps) so benchmarks can reason about solver cost.
    """

    times: np.ndarray
    states: np.ndarray
    n_rhs_evals: int = 0
    n_steps: int = 0
    n_rejected: int = 0
    solver_name: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim == 1:
            self.states = self.states.reshape(-1, 1)
        if len(self.times) != len(self.states):
            raise SolverError(
                "solution times and states have mismatched lengths: "
                f"{len(self.times)} vs {len(self.states)}"
            )

    @property
    def final_state(self) -> np.ndarray:
        """State vector at the final time point."""
        return self.states[-1]

    def interpolate(self, t: float) -> np.ndarray:
        """Linearly interpolate the state at an arbitrary time ``t``.

        Times outside the solved interval are clamped to the boundary values,
        matching how co-simulation masters hold the last known state.
        """
        return self.sample(np.array([float(t)]))[0]

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Interpolate the state trajectory at each of the given times.

        Batch-interpolates every state column with ``np.interp`` (which
        clamps outside the solved interval) instead of stacking per-point
        interpolations.
        """
        query = np.asarray(times, dtype=float)
        sampled = np.empty((query.size, self.states.shape[1]))
        for j in range(self.states.shape[1]):
            sampled[:, j] = np.interp(query, self.times, self.states[:, j])
        return sampled


@dataclass
class BatchOdeSolution:
    """Dense batched solver output: ``(n, N, d)`` states sampled at ``times``.

    Step statistics are per-row arrays (each row of an adaptive solve
    accepts/rejects its own steps); ``n_rhs_evals`` counts *vectorized*
    right-hand-side evaluations, each of which covers the whole fleet.
    """

    times: np.ndarray
    states: np.ndarray
    n_rhs_evals: int = 0
    n_steps: Optional[np.ndarray] = None
    n_rejected: Optional[np.ndarray] = None
    solver_name: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim != 3:
            raise SolverError(
                f"batch solution states must be (n_times, N, d), got shape {self.states.shape}"
            )
        if len(self.times) != self.states.shape[0]:
            raise SolverError(
                "batch solution times and states have mismatched lengths: "
                f"{len(self.times)} vs {self.states.shape[0]}"
            )
        n_rows = self.states.shape[1]
        if self.n_steps is None:
            self.n_steps = np.zeros(n_rows, dtype=int)
        if self.n_rejected is None:
            self.n_rejected = np.zeros(n_rows, dtype=int)

    @property
    def n_rows(self) -> int:
        return self.states.shape[1]

    def row(self, index: int) -> OdeSolution:
        """Row ``index`` as a scalar :class:`OdeSolution` (states copied)."""
        return OdeSolution(
            times=self.times,
            states=self.states[:, index, :].copy(),
            n_rhs_evals=self.n_rhs_evals,
            n_steps=int(self.n_steps[index]),
            n_rejected=int(self.n_rejected[index]),
            solver_name=self.solver_name,
        )


def _stage_function(problem: "OdeProblem"):
    """The solver-facing right-hand side: inputs resolved, result coerced.

    Hoists the per-step overheads out of the stage evaluation: input-less
    problems share one empty input vector, and the float-vector coercion is
    skipped when the rhs already returns a 1-D float array (the compiled
    kernel path always does).
    """
    empty_u = np.empty(0)
    has_inputs = problem.inputs is not None
    rhs = problem.rhs
    input_at = problem.input_at

    def f(t, x):
        u = input_at(t) if has_inputs else empty_u
        dx = rhs(t, x, u)
        if isinstance(dx, np.ndarray) and dx.ndim == 1 and dx.dtype == np.float64:
            return dx
        return np.atleast_1d(np.asarray(dx, dtype=float))

    return f


def _batch_stage_function(problem: "BatchOdeProblem", rows: Optional[np.ndarray] = None):
    """The solver-facing batched right-hand side with inputs resolved.

    Mirrors :func:`_stage_function` for the fleet case: input-less problems
    share one empty ``(N, 0)`` matrix, and ``t`` passes through under the
    scalar-or-vector contract of :class:`BatchOdeProblem`.  When ``rows`` is
    given, the problem's :attr:`~BatchOdeProblem.restrict` hook binds the
    right-hand side and inputs to just those fleet rows (active-set
    compaction in the adaptive batch solvers).
    """
    if rows is None:
        rhs, inputs = problem.rhs, problem.inputs
        n_rows = problem.n_rows
    else:
        if problem.restrict is None:
            raise SolverError("this batch problem does not support row restriction")
        rhs, inputs = problem.restrict(np.asarray(rows, dtype=np.intp))
        n_rows = len(rows)
    if inputs is None:
        empty_u = np.empty((n_rows, 0))

        def f(t, X):
            return rhs(t, X, empty_u)

    else:

        def f(t, X):
            return rhs(t, X, inputs(t))

    return f


class TrajectoryRecorder:
    """Preallocated, geometrically grown storage for solver main loops.

    Replaces the per-step ``times.append(t); states.append(x.copy())`` lists:
    values are written into contiguous numpy buffers that double in size when
    full, so a solve costs O(log n) allocations instead of one per step.
    """

    __slots__ = ("_times", "_states", "_count")

    def __init__(self, n_states: int, capacity: int = 512):
        capacity = max(2, int(capacity))
        self._times = np.empty(capacity)
        self._states = np.empty((capacity, int(n_states)))
        self._count = 0

    def append(self, t: float, x: np.ndarray) -> None:
        n = self._count
        if n == self._times.shape[0]:
            grown_times = np.empty(2 * n)
            grown_times[:n] = self._times
            self._times = grown_times
            grown_states = np.empty((2 * n, self._states.shape[1]))
            grown_states[:n] = self._states
            self._states = grown_states
        self._times[n] = t
        self._states[n] = x
        self._count = n + 1

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The recorded ``(times, states)`` trimmed to the written length."""
        return self._times[: self._count], self._states[: self._count]


class BatchTrajectoryRecorder:
    """Per-row trajectory storage for batched solver main loops.

    Fixed-step solvers append the same time for every row
    (:meth:`append_all`); adaptive solvers scatter accepted steps into the
    rows that accepted them (:meth:`append_rows`), so rows grow at their own
    pace.  Buffers double in size when the fullest row reaches capacity.
    """

    __slots__ = ("_times", "_states", "_counts")

    def __init__(self, n_rows: int, n_states: int, capacity: int = 512):
        capacity = max(2, int(capacity))
        self._times = np.empty((capacity, int(n_rows)))
        self._states = np.empty((capacity, int(n_rows), int(n_states)))
        self._counts = np.zeros(int(n_rows), dtype=np.intp)

    def _grow_if_full(self) -> None:
        capacity = self._times.shape[0]
        if int(self._counts.max(initial=0)) < capacity:
            return
        grown_times = np.empty((2 * capacity,) + self._times.shape[1:])
        grown_times[:capacity] = self._times
        self._times = grown_times
        grown_states = np.empty((2 * capacity,) + self._states.shape[1:])
        grown_states[:capacity] = self._states
        self._states = grown_states

    def append_all(self, t: float, X: np.ndarray) -> None:
        """Record time ``t`` and the ``(N, d)`` state matrix for every row."""
        self._grow_if_full()
        counts = self._counts
        n = int(counts[0])
        if (counts == n).all():
            self._times[n] = t
            self._states[n] = X
        else:
            # Rows have diverged (append_rows was used); scatter at each
            # row's own position instead of clobbering row 0's.
            rows = np.arange(counts.shape[0])
            self._times[counts, rows] = t
            self._states[counts, rows] = X
        self._counts += 1

    def append_rows(self, rows: np.ndarray, t_rows: np.ndarray, x_rows: np.ndarray) -> None:
        """Scatter accepted steps: ``t_rows``/``x_rows`` align with ``rows``."""
        if rows.size == 0:
            return
        self._grow_if_full()
        positions = self._counts[rows]
        self._times[positions, rows] = t_rows
        self._states[positions, rows] = x_rows
        self._counts[rows] += 1

    @property
    def counts(self) -> np.ndarray:
        """Number of recorded points per row."""
        return self._counts

    def sample(self, grid: np.ndarray) -> np.ndarray:
        """Interpolate every row's trajectory onto ``grid`` as ``(n, N, d)``.

        Each row is interpolated over its own recorded times with
        ``np.interp`` (clamping outside the solved interval), exactly as
        :meth:`OdeSolution.sample` does for a scalar solve - so a batched
        row samples bit-identically to the sequential solve that recorded
        the same points.
        """
        grid = np.asarray(grid, dtype=float)
        n_rows, n_states = self._states.shape[1], self._states.shape[2]
        sampled = np.empty((grid.size, n_rows, n_states))
        for row in range(n_rows):
            count = int(self._counts[row])
            row_times = self._times[:count, row]
            for j in range(n_states):
                sampled[:, row, j] = np.interp(grid, row_times, self._states[:count, row, j])
        return sampled


class OdeSolver:
    """Base class for ODE solvers.

    Subclasses implement :meth:`solve` and set :attr:`name`.  Construction
    options common to all solvers are the output grid control parameters.
    """

    name = "base"

    def __init__(self, max_step: Optional[float] = None):
        self.max_step = max_step

    def solve(self, problem: OdeProblem, output_times: Optional[Sequence[float]] = None) -> OdeSolution:
        """Integrate ``problem`` and return a dense :class:`OdeSolution`.

        Parameters
        ----------
        problem:
            The initial value problem to integrate.
        output_times:
            Optional monotone sequence of times at which the solution must be
            reported.  Solvers always include ``t0`` and ``t1``.
        """
        raise NotImplementedError

    def solve_batch(
        self,
        problem: BatchOdeProblem,
        output_times: Optional[Sequence[float]] = None,
    ) -> BatchOdeSolution:
        """Integrate a fleet problem and return a :class:`BatchOdeSolution`.

        The base implementation is a row-by-row fallback: each row is
        integrated as an independent scalar problem through :meth:`solve`
        (via :meth:`BatchOdeProblem.row_problem`, which evaluates the
        batched rhs at full fleet width).  Concrete solvers override this
        with true matrix stepping; the fallback keeps any third-party
        solver usable for fleets, just without the vectorization win.
        """
        rows = [
            self.solve(problem.row_problem(row), output_times=output_times)
            for row in range(problem.n_rows)
        ]
        return BatchOdeSolution(
            times=rows[0].times,
            states=np.stack([solution.states for solution in rows], axis=1),
            n_rhs_evals=sum(solution.n_rhs_evals for solution in rows),
            n_steps=np.array([solution.n_steps for solution in rows], dtype=int),
            n_rejected=np.array([solution.n_rejected for solution in rows], dtype=int),
            solver_name=self.name,
        )

    def _normalized_output_times(
        self, problem: OdeProblem, output_times: Optional[Sequence[float]]
    ) -> np.ndarray:
        """Validate and normalize the requested output grid."""
        if output_times is None:
            return np.array([problem.t0, problem.t1])
        grid = np.asarray(list(output_times), dtype=float)
        if grid.size == 0:
            return np.array([problem.t0, problem.t1])
        if np.any(np.diff(grid) < 0):
            raise SolverError("output_times must be non-decreasing")
        if grid[0] > problem.t0:
            grid = np.concatenate(([problem.t0], grid))
        if grid[-1] < problem.t1:
            grid = np.concatenate((grid, [problem.t1]))
        return np.clip(grid, problem.t0, problem.t1)


def solve_ode(
    rhs: RhsFunction,
    x0,
    t0: float,
    t1: float,
    inputs: Optional[InputFunction] = None,
    solver: str = "rk45",
    output_times: Optional[Sequence[float]] = None,
    **options,
) -> OdeSolution:
    """Convenience wrapper: build an :class:`OdeProblem` and solve it.

    This is the entry point used by the FMI runtime and by tests that need a
    one-line integration call.
    """
    from repro.solvers import get_solver

    problem = OdeProblem(rhs=rhs, x0=x0, t0=t0, t1=t1, inputs=inputs)
    return get_solver(solver, **options).solve(problem, output_times=output_times)
