"""Solver degradation ladder: retry a diverged integration, then fall back.

When a simulation hits a :class:`~repro.errors.SolverError` (divergence,
step-limit exhaustion, an injected ``solver.step`` fault), a
:class:`RetryPolicy` describes the ladder of progressively more
conservative attempts to make before giving up:

1. the requested solver with the requested options (skipped when the
   caller already ran it);
2. the same solver with *tightened* numerics - step sizes and tolerances
   scaled by :attr:`RetryPolicy.step_factor`, and the adaptive step limit
   raised so smaller steps do not trip it;
3. the :attr:`RetryPolicy.fallback_solver` (rk45 -> rk4 by default), a
   fixed-step method immune to step-controller runaway, with only the
   options it understands.

Only :class:`~repro.errors.SolverError` is retried.  Typed timeout /
cancellation errors, storage errors, and everything else propagate
immediately - a deadline must not be burned on doomed retries.

This generalizes the ad-hoc divergence handling the population objective
already does (bisecting failed fleets): :class:`repro.core.simulate.Simulator`
applies a default policy to ``fmu_simulate``, and
:class:`repro.estimation.objective.SimulationObjective` accepts an opt-in
policy for calibration (off by default, so pinned estimation results are
unchanged unless a caller asks for resilience).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SolverError

#: Options understood by the fixed-step fallback solvers (rk4, euler);
#: adaptive-only options (rtol, atol, max_steps) are dropped on fallback.
_FIXED_STEP_OPTIONS = ("step", "max_step")

#: Options scaled by ``step_factor`` when tightening an attempt.
_TIGHTENABLE_OPTIONS = ("step", "max_step", "rtol", "atol")

#: Default tightened tolerances for an adaptive solver invoked with no
#: explicit options (there is nothing to scale, so tighten from these).
_ADAPTIVE_DEFAULTS = {"rtol": 1e-6, "atol": 1e-8}

_ADAPTIVE_SOLVERS = {"rk45", "cvode"}


@dataclass(frozen=True)
class RetryPolicy:
    """How to degrade when a solver fails (see module docstring).

    Attributes
    ----------
    max_attempts:
        Cap on the total number of attempts, first try included.
    step_factor:
        Multiplier applied to step sizes / tolerances on the tightened
        attempt (0.25 means four times smaller steps).
    fallback_solver:
        Solver name for the last rung (empty/None disables the fallback
        rung).  Must be a registered fixed-step solver.
    """

    max_attempts: int = 3
    step_factor: float = 0.25
    fallback_solver: Optional[str] = "rk4"

    def attempts(
        self, solver: str, solver_options: Optional[Dict[str, Any]] = None
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """The ladder of ``(solver_name, options)`` attempts, capped."""
        options = dict(solver_options or {})
        ladder: List[Tuple[str, Dict[str, Any]]] = [(solver, options)]
        tightened = self._tighten(solver, options)
        if tightened is not None:
            ladder.append((solver, tightened))
        if self.fallback_solver and self.fallback_solver != solver:
            ladder.append((self.fallback_solver, self._fallback_options(options)))
        return ladder[: max(1, int(self.max_attempts))]

    def _tighten(
        self, solver: str, options: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        tightened = dict(options)
        changed = False
        for key in _TIGHTENABLE_OPTIONS:
            if tightened.get(key) is not None:
                tightened[key] = float(tightened[key]) * self.step_factor
                changed = True
        if not changed and solver in _ADAPTIVE_SOLVERS:
            for key, default in _ADAPTIVE_DEFAULTS.items():
                tightened[key] = default * self.step_factor
            changed = True
        if not changed:
            # Fixed-step solver at its span-derived default step: there is
            # no knob to scale without knowing the span, so skip this rung.
            return None
        if solver in _ADAPTIVE_SOLVERS:
            # Smaller steps need more of them; keep the safety limit from
            # turning the tightened attempt into an instant failure.
            tightened["max_steps"] = int(tightened.get("max_steps", 100_000)) * 4
        return tightened

    def _fallback_options(self, options: Dict[str, Any]) -> Dict[str, Any]:
        fallback: Dict[str, Any] = {}
        for key in _FIXED_STEP_OPTIONS:
            if options.get(key) is not None:
                fallback[key] = float(options[key]) * self.step_factor
        return fallback

    def run(
        self,
        simulate: Callable[[str, Dict[str, Any]], Any],
        solver: str,
        solver_options: Optional[Dict[str, Any]] = None,
        skip_first: bool = False,
    ) -> Any:
        """Run ``simulate(solver_name, options)`` down the ladder.

        ``skip_first`` is for callers that already made (and caught) the
        plain attempt themselves.  Re-raises the *last* attempt's
        :class:`~repro.errors.SolverError` when every rung fails; anything
        that is not a :class:`SolverError` propagates immediately.
        """
        ladder = self.attempts(solver, solver_options)
        if skip_first:
            ladder = ladder[1:]
        if not ladder:
            raise SolverError(
                f"retry ladder for solver {solver!r} is empty (nothing to retry)"
            )
        last: Optional[SolverError] = None
        for name, options in ladder:
            try:
                return simulate(name, options)
            except SolverError as exc:
                last = exc
        assert last is not None
        raise last
