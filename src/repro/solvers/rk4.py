"""Classic fourth-order Runge-Kutta fixed-step solver."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import SolverError
from repro.solvers.base import (
    BatchOdeProblem,
    BatchOdeSolution,
    BatchTrajectoryRecorder,
    OdeProblem,
    OdeSolution,
    OdeSolver,
    TrajectoryRecorder,
    _batch_stage_function,
    _check_step,
    _stage_function,
    _step_guard,
    _CHECK_INTERVAL,
)


class RungeKutta4Solver(OdeSolver):
    """Classic RK4 with a fixed step size.

    Default step size is 1/100 of the integration interval; override with
    ``step``.  The solver reports the dense per-step trajectory resampled on
    the requested output grid.
    """

    name = "rk4"

    def __init__(self, step: Optional[float] = None, max_step: Optional[float] = None):
        super().__init__(max_step=max_step)
        self.step = step

    def _step_size(self, problem: OdeProblem) -> float:
        span = problem.t1 - problem.t0
        if self.step is not None:
            h = float(self.step)
        elif self.max_step is not None:
            h = float(self.max_step)
        else:
            h = span / 100.0
        if h <= 0:
            raise SolverError(f"step size must be positive, got {h}")
        return min(h, span)

    def solve(self, problem: OdeProblem, output_times: Optional[Sequence[float]] = None) -> OdeSolution:
        grid = self._normalized_output_times(problem, output_times)
        h = self._step_size(problem)

        # The step count is known up front; preallocate the full trajectory.
        recorder = TrajectoryRecorder(
            len(problem.x0), int((problem.t1 - problem.t0) / h) + 4
        )
        recorder.append(problem.t0, problem.x0)
        t = problem.t0
        x = problem.x0.copy()
        n_evals = 0
        n_steps = 0

        f = _stage_function(problem)
        t1 = problem.t1
        token, injector, watch = _step_guard()
        checks_left = _CHECK_INTERVAL
        with np.errstate(over="ignore", invalid="ignore"):
            while t < t1 - 1e-15:
                if watch:
                    checks_left -= 1
                    if checks_left == 0:
                        checks_left = _CHECK_INTERVAL
                        _check_step(token, injector)
                h_eff = min(h, t1 - t)
                k1 = f(t, x)
                k2 = f(t + h_eff / 2.0, x + h_eff / 2.0 * k1)
                k3 = f(t + h_eff / 2.0, x + h_eff / 2.0 * k2)
                k4 = f(t + h_eff, x + h_eff * k3)
                n_evals += 4
                x = x + (h_eff / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
                t = t + h_eff
                n_steps += 1
                # Scalar pre-check + exact fallback, see EulerSolver.
                if not math.isfinite(sum(x.tolist())) and not np.isfinite(x).all():
                    raise SolverError(f"RK4 integration diverged at t={t}")
                recorder.append(t, x)

        times, states = recorder.arrays()
        dense = OdeSolution(
            times=times,
            states=states,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            solver_name=self.name,
        )
        sampled = dense.sample(grid)
        return OdeSolution(
            times=grid,
            states=sampled,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            solver_name=self.name,
        )

    def solve_batch(
        self,
        problem: BatchOdeProblem,
        output_times: Optional[Sequence[float]] = None,
    ) -> BatchOdeSolution:
        """Integrate a whole fleet with matrix stages: four vectorized rhs
        evaluations per RK4 step regardless of fleet size.

        Rows share the fixed step size and time grid; per-row arithmetic is
        identical to :meth:`solve`.
        """
        grid = self._normalized_output_times(problem, output_times)
        h = self._step_size(problem)

        recorder = BatchTrajectoryRecorder(
            problem.n_rows, problem.n_states, int((problem.t1 - problem.t0) / h) + 4
        )
        recorder.append_all(problem.t0, problem.x0)
        t = problem.t0
        X = problem.x0.copy()
        n_evals = 0
        n_steps = 0

        f = _batch_stage_function(problem)
        t1 = problem.t1
        token, injector, watch = _step_guard()
        checks_left = _CHECK_INTERVAL
        with np.errstate(over="ignore", invalid="ignore"):
            while t < t1 - 1e-15:
                if watch:
                    checks_left -= 1
                    if checks_left == 0:
                        checks_left = _CHECK_INTERVAL
                        _check_step(token, injector)
                h_eff = min(h, t1 - t)
                k1 = f(t, X)
                k2 = f(t + h_eff / 2.0, X + h_eff / 2.0 * k1)
                k3 = f(t + h_eff / 2.0, X + h_eff / 2.0 * k2)
                k4 = f(t + h_eff, X + h_eff * k3)
                n_evals += 4
                X = X + (h_eff / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
                t = t + h_eff
                n_steps += 1
                # Scalar pre-check + exact fallback, see EulerSolver.solve_batch.
                if not math.isfinite(float(X.sum())) and not np.isfinite(X).all():
                    bad = np.where(~np.isfinite(X).all(axis=1))[0]
                    raise SolverError(
                        f"RK4 integration diverged at t={t} (rows {bad.tolist()})"
                    )
                recorder.append_all(t, X)

        steps_per_row = np.full(problem.n_rows, n_steps, dtype=int)
        return BatchOdeSolution(
            times=grid,
            states=recorder.sample(grid),
            n_rhs_evals=n_evals,
            n_steps=steps_per_row,
            solver_name=self.name,
        )
