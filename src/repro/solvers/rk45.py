"""Adaptive Dormand-Prince RK45 solver with dense output.

This is the default solver of the FMI runtime and plays the role that
Assimulo's CVode plays in the original pgFMU stack: an error-controlled
integrator that is accurate enough that calibration results are limited by
the optimizer, not the integrator.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import SolverError
from repro.solvers.base import (
    BatchOdeProblem,
    BatchOdeSolution,
    BatchTrajectoryRecorder,
    OdeProblem,
    OdeSolution,
    OdeSolver,
    TrajectoryRecorder,
    _batch_stage_function,
    _check_step,
    _stage_function,
    _step_guard,
    _CHECK_INTERVAL,
)

# Dormand-Prince Butcher tableau (RK45, FSAL).
_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_A = [
    np.array([]),
    np.array([1 / 5]),
    np.array([3 / 40, 9 / 40]),
    np.array([44 / 45, -56 / 15, 32 / 9]),
    np.array([19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729]),
    np.array([9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656]),
    np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84]),
]
_B5 = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0])
_B4 = np.array(
    [5179 / 57600, 0.0, 7571 / 16695, 393 / 640, -92097 / 339200, 187 / 2100, 1 / 40]
)

# Dense square form of _A so stage combinations run as one vectorized
# combination over the stacked stage array instead of a Python generator sum.
_A_MAT = np.zeros((7, 7))
for _i, _row in enumerate(_A):
    _A_MAT[_i, : len(_row)] = _row

# Stage combinations are computed as elementwise multiply + axis-0 sum
# rather than a BLAS dot: BLAS gemv kernels round differently depending on
# the matrix width (column blocking, FMA), so a dot over an (i, d) stage
# block and over an (i, N*d) batched block disagree in the last ulp - which
# desynchronizes the batched solver's per-row step sequence from the scalar
# one.  The multiply+sum form reduces every element in the same order
# regardless of trailing width, making scalar and batched solves
# bit-comparable.  Coefficients are precomputed as broadcast-ready columns
# for the scalar (i, 1) and batched (i, 1, 1) stage shapes.
_A_COLS = [_A_MAT[_i, :_i].reshape(-1, 1) for _i in range(7)]
_A_COLS_BATCH = [_A_MAT[_i, :_i].reshape(-1, 1, 1) for _i in range(7)]
_B5_COL, _B5_COL_BATCH = _B5.reshape(-1, 1), _B5.reshape(-1, 1, 1)
_B4_COL, _B4_COL_BATCH = _B4.reshape(-1, 1), _B4.reshape(-1, 1, 1)


class DormandPrince45Solver(OdeSolver):
    """Adaptive RK45 (Dormand-Prince) with step-size control.

    Parameters
    ----------
    rtol, atol:
        Relative and absolute local error tolerances.
    max_step:
        Optional upper bound on the step size.
    max_steps:
        Safety limit on the number of accepted steps before the solver gives
        up with a :class:`~repro.errors.SolverError`.
    """

    name = "rk45"

    def __init__(
        self,
        rtol: float = 1e-6,
        atol: float = 1e-8,
        max_step: Optional[float] = None,
        max_steps: int = 100_000,
    ):
        super().__init__(max_step=max_step)
        if rtol <= 0 or atol <= 0:
            raise SolverError("rtol and atol must be positive")
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.max_steps = int(max_steps)

    def solve(self, problem: OdeProblem, output_times: Optional[Sequence[float]] = None) -> OdeSolution:
        grid = self._normalized_output_times(problem, output_times)

        f = _stage_function(problem)
        t = problem.t0
        x = problem.x0.copy()
        span = problem.t1 - problem.t0
        h = span / 100.0
        if self.max_step is not None:
            h = min(h, self.max_step)

        recorder = TrajectoryRecorder(len(x))
        recorder.append(t, x)
        n_evals = 1
        k_first = f(t, x)

        with np.errstate(over="ignore", invalid="ignore"):
            return self._integrate(problem, grid, f, t, x, h, span, k_first, recorder, n_evals)

    def _integrate(self, problem, grid, f, t, x, h, span, k_first, recorder, n_evals):
        n_steps = 0
        n_rejected = 0
        # Stacked stage array: K[i] is the i-th stage derivative.  K[0] is
        # only rewritten on acceptance (FSAL), so a rejected step retries
        # with the same first stage.
        stages = np.empty((7, len(x)))
        stages[0] = k_first
        token, injector, watch = _step_guard()
        checks_left = _CHECK_INTERVAL
        while t < problem.t1 - 1e-14:
            if watch:
                checks_left -= 1
                if checks_left == 0:
                    checks_left = _CHECK_INTERVAL
                    _check_step(token, injector)
            if n_steps + n_rejected > self.max_steps:
                raise SolverError(
                    f"RK45 exceeded {self.max_steps} steps (t={t}, interval ends at {problem.t1})"
                )
            h = min(h, problem.t1 - t)
            if self.max_step is not None:
                h = min(h, self.max_step)

            for i in range(1, 7):
                xi = x + h * (_A_COLS[i] * stages[:i]).sum(axis=0)
                stages[i] = f(t + _C[i] * h, xi)
            n_evals += 6

            x5 = x + h * (_B5_COL * stages).sum(axis=0)
            x4 = x + h * (_B4_COL * stages).sum(axis=0)

            scale = self.atol + self.rtol * np.maximum(np.abs(x), np.abs(x5))
            err = np.sqrt(np.mean(((x5 - x4) / scale) ** 2)) if scale.size else 0.0

            if err <= 1.0 or h <= 1e-12 * span:
                t = t + h
                x = x5
                stages[0] = stages[6]  # FSAL: last stage equals first stage of next step
                # Scalar pre-check + exact fallback, see EulerSolver.
                if not math.isfinite(sum(x.tolist())) and not np.isfinite(x).all():
                    raise SolverError(f"RK45 integration diverged at t={t}")
                recorder.append(t, x)
                n_steps += 1
            else:
                n_rejected += 1

            # Standard step-size controller with safety factor and clamps.
            if err == 0.0:
                factor = 5.0
            else:
                factor = min(5.0, max(0.2, 0.9 * err ** (-0.2)))
            h = h * factor

        times, states = recorder.arrays()
        dense = OdeSolution(
            times=times,
            states=states,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            n_rejected=n_rejected,
            solver_name=self.name,
        )
        sampled = dense.sample(grid)
        return OdeSolution(
            times=grid,
            states=sampled,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            n_rejected=n_rejected,
            solver_name=self.name,
        )

    def solve_batch(
        self,
        problem: BatchOdeProblem,
        output_times: Optional[Sequence[float]] = None,
    ) -> BatchOdeSolution:
        """Integrate a fleet with **per-row** adaptive error control.

        Every row carries its own time, step size and accept/reject state,
        and the step controller applies the scalar :meth:`solve` arithmetic
        row-wise - so each row walks the same step sequence the sequential
        solver would, and batched trajectories match sequential ones to
        floating-point rounding.  Each iteration evaluates the six
        Dormand-Prince stages for the *whole working set* in one vectorized
        rhs call.  The iteration count is the maximum of the per-row step
        counts, not their sum - the fleet finishes when its slowest row does.

        When the problem supplies a :attr:`~repro.solvers.base.BatchOdeProblem.restrict`
        hook, the working set is **compacted** as rows reach ``t1``: finished
        rows are dropped from the state/stage matrices and the right-hand
        side is re-bound to the survivors, so they stop being evaluated and
        a ragged fleet (a few stiff rows among tame ones) does not pay full
        fleet width to the end.  Per-row arithmetic is elementwise over
        rows, so compaction leaves every surviving row's step sequence - and
        therefore its trajectory - bit-identical.  Without the hook, rows
        that have reached ``t1`` (or are between accepted steps) are still
        evaluated but their results are discarded, which keeps the hot loop
        free of per-row branching.
        """
        grid = self._normalized_output_times(problem, output_times)
        f = _batch_stage_function(problem)
        n_rows, n_states = problem.n_rows, problem.n_states
        span = problem.t1 - problem.t0
        t1 = problem.t1
        h0 = span / 100.0
        if self.max_step is not None:
            h0 = min(h0, self.max_step)

        # Full-fleet bookkeeping stays indexed by original row; the working
        # arrays below may shrink, with ``idx`` mapping working row -> fleet
        # row (identity until compaction kicks in).
        recorder = BatchTrajectoryRecorder(n_rows, n_states)
        recorder.append_all(problem.t0, problem.x0)
        n_steps = np.zeros(n_rows, dtype=int)
        n_rejected = np.zeros(n_rows, dtype=int)
        can_compact = problem.restrict is not None

        idx = np.arange(n_rows)
        t = np.full(n_rows, problem.t0)
        h = np.full(n_rows, h0)
        X = problem.x0.copy()
        # Stacked stages: K[i] is the i-th stage derivative for every row.
        # K[0] is rewritten only for rows that accept (FSAL), so a rejected
        # row retries with the same first stage.
        stages = np.empty((7, n_rows, n_states))
        n_evals = 1

        token, injector, watch = _step_guard()
        checks_left = _CHECK_INTERVAL
        with np.errstate(over="ignore", invalid="ignore"):
            stages[0] = f(t, X)
            while True:
                if watch:
                    checks_left -= 1
                    if checks_left == 0:
                        checks_left = _CHECK_INTERVAL
                        _check_step(token, injector)
                active = t < t1 - 1e-14
                if not active.any():
                    break
                if can_compact and not active.all():
                    # Drop finished rows from the working set and re-bind the
                    # rhs/inputs to the survivors (slicing preserves each
                    # kept row's FSAL stage and controller state exactly).
                    keep = np.where(active)[0]
                    idx = idx[keep]
                    t, h, X = t[keep], h[keep], X[keep]
                    stages = np.ascontiguousarray(stages[:, keep, :])
                    f = _batch_stage_function(problem, rows=idx)
                    active = np.ones(idx.shape[0], dtype=bool)
                attempts = n_steps[idx] + n_rejected[idx]
                if np.any(attempts[active] > self.max_steps):
                    local = int(np.where(active & (attempts > self.max_steps))[0][0])
                    raise SolverError(
                        f"RK45 exceeded {self.max_steps} steps "
                        f"(row {int(idx[local])}, t={t[local]}, interval ends at {t1})"
                    )
                # The scalar solver clamps h before the stages and feeds the
                # clamped value into the controller; replicate that row-wise.
                h_eff = np.minimum(h, t1 - t)
                if self.max_step is not None:
                    h_eff = np.minimum(h_eff, self.max_step)

                for i in range(1, 7):
                    xi = X + h_eff[:, None] * (_A_COLS_BATCH[i] * stages[:i]).sum(axis=0)
                    stages[i] = f(t + _C[i] * h_eff, xi)
                n_evals += 6

                x5 = X + h_eff[:, None] * (_B5_COL_BATCH * stages).sum(axis=0)
                x4 = X + h_eff[:, None] * (_B4_COL_BATCH * stages).sum(axis=0)

                scale = self.atol + self.rtol * np.maximum(np.abs(X), np.abs(x5))
                err = np.sqrt(np.mean(((x5 - x4) / scale) ** 2, axis=1))

                accept = active & ((err <= 1.0) | (h_eff <= 1e-12 * span))
                if accept.any():
                    rows = np.where(accept)[0]
                    t = np.where(accept, t + h_eff, t)
                    X = np.where(accept[:, None], x5, X)
                    stages[0][rows] = stages[6][rows]  # FSAL, per accepted row
                    accepted_states = X[rows]
                    if not np.isfinite(accepted_states).all():
                        bad = idx[rows[~np.isfinite(accepted_states).all(axis=1)]]
                        raise SolverError(
                            f"RK45 integration diverged (rows {bad.tolist()})"
                        )
                    recorder.append_rows(idx[rows], t[rows], accepted_states)
                    n_steps[idx[rows]] += 1
                n_rejected[idx[np.where(active & ~accept)[0]]] += 1

                # Row-wise standard controller, computed with *scalar* pow:
                # numpy's vectorized power ufunc rounds differently from the
                # scalar pow in ~5% of inputs, and a 1-ulp difference in the
                # factor desynchronizes the batched step sequence from the
                # sequential one.  Python floats hit the same libm pow the
                # scalar solver does (Python max/min also clamp a nan error
                # from a diverging trial step to 0.2 the same way).  One pow
                # per row per attempt is far off the hot path.
                factor = np.array(
                    [
                        5.0 if e == 0.0 else min(5.0, max(0.2, 0.9 * e ** (-0.2)))
                        for e in err.tolist()
                    ]
                )
                h = np.where(active, h_eff * factor, h)

        return BatchOdeSolution(
            times=grid,
            states=recorder.sample(grid),
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            n_rejected=n_rejected,
            solver_name=self.name,
        )
