"""Adaptive Dormand-Prince RK45 solver with dense output.

This is the default solver of the FMI runtime and plays the role that
Assimulo's CVode plays in the original pgFMU stack: an error-controlled
integrator that is accurate enough that calibration results are limited by
the optimizer, not the integrator.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import SolverError
from repro.solvers.base import (
    OdeProblem,
    OdeSolution,
    OdeSolver,
    TrajectoryRecorder,
    _stage_function,
)

# Dormand-Prince Butcher tableau (RK45, FSAL).
_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_A = [
    np.array([]),
    np.array([1 / 5]),
    np.array([3 / 40, 9 / 40]),
    np.array([44 / 45, -56 / 15, 32 / 9]),
    np.array([19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729]),
    np.array([9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656]),
    np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84]),
]
_B5 = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0])
_B4 = np.array(
    [5179 / 57600, 0.0, 7571 / 16695, 393 / 640, -92097 / 339200, 187 / 2100, 1 / 40]
)

# Dense square form of _A so stage combinations run as one matrix-vector
# product over the stacked stage array instead of a Python generator sum.
_A_MAT = np.zeros((7, 7))
for _i, _row in enumerate(_A):
    _A_MAT[_i, : len(_row)] = _row


class DormandPrince45Solver(OdeSolver):
    """Adaptive RK45 (Dormand-Prince) with step-size control.

    Parameters
    ----------
    rtol, atol:
        Relative and absolute local error tolerances.
    max_step:
        Optional upper bound on the step size.
    max_steps:
        Safety limit on the number of accepted steps before the solver gives
        up with a :class:`~repro.errors.SolverError`.
    """

    name = "rk45"

    def __init__(
        self,
        rtol: float = 1e-6,
        atol: float = 1e-8,
        max_step: Optional[float] = None,
        max_steps: int = 100_000,
    ):
        super().__init__(max_step=max_step)
        if rtol <= 0 or atol <= 0:
            raise SolverError("rtol and atol must be positive")
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.max_steps = int(max_steps)

    def solve(self, problem: OdeProblem, output_times: Optional[Sequence[float]] = None) -> OdeSolution:
        grid = self._normalized_output_times(problem, output_times)

        f = _stage_function(problem)
        t = problem.t0
        x = problem.x0.copy()
        span = problem.t1 - problem.t0
        h = span / 100.0
        if self.max_step is not None:
            h = min(h, self.max_step)

        recorder = TrajectoryRecorder(len(x))
        recorder.append(t, x)
        n_evals = 1
        k_first = f(t, x)

        with np.errstate(over="ignore", invalid="ignore"):
            return self._integrate(problem, grid, f, t, x, h, span, k_first, recorder, n_evals)

    def _integrate(self, problem, grid, f, t, x, h, span, k_first, recorder, n_evals):
        n_steps = 0
        n_rejected = 0
        # Stacked stage array: K[i] is the i-th stage derivative.  K[0] is
        # only rewritten on acceptance (FSAL), so a rejected step retries
        # with the same first stage.
        stages = np.empty((7, len(x)))
        stages[0] = k_first
        while t < problem.t1 - 1e-14:
            if n_steps + n_rejected > self.max_steps:
                raise SolverError(
                    f"RK45 exceeded {self.max_steps} steps (t={t}, interval ends at {problem.t1})"
                )
            h = min(h, problem.t1 - t)
            if self.max_step is not None:
                h = min(h, self.max_step)

            for i in range(1, 7):
                xi = x + h * (_A_MAT[i, :i] @ stages[:i])
                stages[i] = f(t + _C[i] * h, xi)
            n_evals += 6

            x5 = x + h * (_B5 @ stages)
            x4 = x + h * (_B4 @ stages)

            scale = self.atol + self.rtol * np.maximum(np.abs(x), np.abs(x5))
            err = np.sqrt(np.mean(((x5 - x4) / scale) ** 2)) if scale.size else 0.0

            if err <= 1.0 or h <= 1e-12 * span:
                t = t + h
                x = x5
                stages[0] = stages[6]  # FSAL: last stage equals first stage of next step
                # Scalar pre-check + exact fallback, see EulerSolver.
                if not math.isfinite(sum(x.tolist())) and not np.isfinite(x).all():
                    raise SolverError(f"RK45 integration diverged at t={t}")
                recorder.append(t, x)
                n_steps += 1
            else:
                n_rejected += 1

            # Standard step-size controller with safety factor and clamps.
            if err == 0.0:
                factor = 5.0
            else:
                factor = min(5.0, max(0.2, 0.9 * err ** (-0.2)))
            h = h * factor

        times, states = recorder.arrays()
        dense = OdeSolution(
            times=times,
            states=states,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            n_rejected=n_rejected,
            solver_name=self.name,
        )
        sampled = dense.sample(grid)
        return OdeSolution(
            times=grid,
            states=sampled,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            n_rejected=n_rejected,
            solver_name=self.name,
        )
