"""Forward Euler fixed-step solver."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SolverError
from repro.solvers.base import OdeProblem, OdeSolution, OdeSolver


class EulerSolver(OdeSolver):
    """Explicit forward Euler with a fixed step size.

    The step size defaults to 1/200 of the integration interval unless
    ``step`` (or the generic ``max_step``) is given.  Euler is mainly useful
    as a cheap baseline and for property tests comparing solver accuracy.
    """

    name = "euler"

    def __init__(self, step: Optional[float] = None, max_step: Optional[float] = None):
        super().__init__(max_step=max_step)
        self.step = step

    def _step_size(self, problem: OdeProblem) -> float:
        span = problem.t1 - problem.t0
        if self.step is not None:
            h = float(self.step)
        elif self.max_step is not None:
            h = float(self.max_step)
        else:
            h = span / 200.0
        if h <= 0:
            raise SolverError(f"step size must be positive, got {h}")
        return min(h, span)

    def solve(self, problem: OdeProblem, output_times: Optional[Sequence[float]] = None) -> OdeSolution:
        grid = self._normalized_output_times(problem, output_times)
        h = self._step_size(problem)

        times = [problem.t0]
        states = [problem.x0.copy()]
        t = problem.t0
        x = problem.x0.copy()
        n_evals = 0
        n_steps = 0
        with np.errstate(over="ignore", invalid="ignore"):
            while t < problem.t1 - 1e-15:
                h_eff = min(h, problem.t1 - t)
                u = problem.input_at(t)
                dx = np.atleast_1d(np.asarray(problem.rhs(t, x, u), dtype=float))
                n_evals += 1
                x = x + h_eff * dx
                t = t + h_eff
                n_steps += 1
                if not np.isfinite(x).all():
                    raise SolverError(f"Euler integration diverged at t={t}")
                times.append(t)
                states.append(x.copy())

        dense = OdeSolution(
            times=np.asarray(times),
            states=np.vstack(states),
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            solver_name=self.name,
        )
        sampled = dense.sample(grid)
        return OdeSolution(
            times=grid,
            states=sampled,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            solver_name=self.name,
        )
