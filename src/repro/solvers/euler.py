"""Forward Euler fixed-step solver."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import SolverError
from repro.solvers.base import (
    BatchOdeProblem,
    BatchOdeSolution,
    BatchTrajectoryRecorder,
    OdeProblem,
    OdeSolution,
    OdeSolver,
    TrajectoryRecorder,
    _batch_stage_function,
    _check_step,
    _stage_function,
    _step_guard,
    _CHECK_INTERVAL,
)


class EulerSolver(OdeSolver):
    """Explicit forward Euler with a fixed step size.

    The step size defaults to 1/200 of the integration interval unless
    ``step`` (or the generic ``max_step``) is given.  Euler is mainly useful
    as a cheap baseline and for property tests comparing solver accuracy.
    """

    name = "euler"

    def __init__(self, step: Optional[float] = None, max_step: Optional[float] = None):
        super().__init__(max_step=max_step)
        self.step = step

    def _step_size(self, problem: OdeProblem) -> float:
        span = problem.t1 - problem.t0
        if self.step is not None:
            h = float(self.step)
        elif self.max_step is not None:
            h = float(self.max_step)
        else:
            h = span / 200.0
        if h <= 0:
            raise SolverError(f"step size must be positive, got {h}")
        return min(h, span)

    def solve(self, problem: OdeProblem, output_times: Optional[Sequence[float]] = None) -> OdeSolution:
        grid = self._normalized_output_times(problem, output_times)
        h = self._step_size(problem)

        # The step count is known up front; preallocate the full trajectory.
        recorder = TrajectoryRecorder(
            len(problem.x0), int((problem.t1 - problem.t0) / h) + 4
        )
        recorder.append(problem.t0, problem.x0)
        t = problem.t0
        x = problem.x0.copy()
        n_evals = 0
        n_steps = 0
        f = _stage_function(problem)
        t1 = problem.t1
        token, injector, watch = _step_guard()
        checks_left = _CHECK_INTERVAL
        with np.errstate(over="ignore", invalid="ignore"):
            while t < t1 - 1e-15:
                if watch:
                    checks_left -= 1
                    if checks_left == 0:
                        checks_left = _CHECK_INTERVAL
                        _check_step(token, injector)
                h_eff = min(h, t1 - t)
                dx = f(t, x)
                n_evals += 1
                x = x + h_eff * dx
                t = t + h_eff
                n_steps += 1
                # Cheap scalar pre-check (the sum is non-finite whenever any
                # component is; opposite-sign infinities collapse to nan);
                # the exact per-component check runs only when it trips, so
                # a finite sum that merely overflows is not misreported.
                if not math.isfinite(sum(x.tolist())) and not np.isfinite(x).all():
                    raise SolverError(f"Euler integration diverged at t={t}")
                recorder.append(t, x)

        times, states = recorder.arrays()
        dense = OdeSolution(
            times=times,
            states=states,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            solver_name=self.name,
        )
        sampled = dense.sample(grid)
        return OdeSolution(
            times=grid,
            states=sampled,
            n_rhs_evals=n_evals,
            n_steps=n_steps,
            solver_name=self.name,
        )

    def solve_batch(
        self,
        problem: BatchOdeProblem,
        output_times: Optional[Sequence[float]] = None,
    ) -> BatchOdeSolution:
        """Integrate a whole fleet with one matrix step per Euler step.

        All rows share the fixed step size, so the time grid is common and
        each step is a single vectorized rhs evaluation; per-row arithmetic
        is identical to :meth:`solve`, so batched trajectories match the
        sequential ones to floating-point rounding.
        """
        grid = self._normalized_output_times(problem, output_times)
        h = self._step_size(problem)

        recorder = BatchTrajectoryRecorder(
            problem.n_rows, problem.n_states, int((problem.t1 - problem.t0) / h) + 4
        )
        recorder.append_all(problem.t0, problem.x0)
        t = problem.t0
        X = problem.x0.copy()
        n_evals = 0
        n_steps = 0
        f = _batch_stage_function(problem)
        t1 = problem.t1
        token, injector, watch = _step_guard()
        checks_left = _CHECK_INTERVAL
        with np.errstate(over="ignore", invalid="ignore"):
            while t < t1 - 1e-15:
                if watch:
                    checks_left -= 1
                    if checks_left == 0:
                        checks_left = _CHECK_INTERVAL
                        _check_step(token, injector)
                h_eff = min(h, t1 - t)
                dX = f(t, X)
                n_evals += 1
                X = X + h_eff * dX
                t = t + h_eff
                n_steps += 1
                # Scalar pre-check + exact fallback over the whole fleet;
                # callers fall back to per-row integration to pinpoint the
                # diverging instance.
                if not math.isfinite(float(X.sum())) and not np.isfinite(X).all():
                    bad = np.where(~np.isfinite(X).all(axis=1))[0]
                    raise SolverError(
                        f"Euler integration diverged at t={t} (rows {bad.tolist()})"
                    )
                recorder.append_all(t, X)

        steps_per_row = np.full(problem.n_rows, n_steps, dtype=int)
        return BatchOdeSolution(
            times=grid,
            states=recorder.sample(grid),
            n_rhs_evals=n_evals,
            n_steps=steps_per_row,
            solver_name=self.name,
        )
