"""ODE solvers used to integrate FMU model equations.

This subpackage replaces the Assimulo/CVode solver stack used by the original
pgFMU.  It provides explicit fixed-step solvers (forward Euler, classic
Runge-Kutta 4) and an adaptive Dormand-Prince RK45 solver with dense output,
all operating on plain callables ``f(t, x, u) -> dx/dt``.

The solver interface is deliberately tiny so that the FMI runtime
(:mod:`repro.fmi.model`) can swap solvers via the ``solver`` simulation option
without caring about their internals.

Every solver also integrates *fleets*: ``solve_batch`` steps an ``(N, d)``
state matrix through a batched right-hand side ``F(t, X, U) -> (N, d)``
(see :class:`~repro.solvers.base.BatchOdeProblem`), which is how
``Session.simulate_many`` scales sub-linearly in the number of instances.
"""

from repro.solvers.base import (
    BatchOdeProblem,
    BatchOdeSolution,
    OdeProblem,
    OdeSolution,
    OdeSolver,
    solve_ode,
)
from repro.solvers.euler import EulerSolver
from repro.solvers.retry import RetryPolicy
from repro.solvers.rk4 import RungeKutta4Solver
from repro.solvers.rk45 import DormandPrince45Solver

SOLVER_REGISTRY = {
    "euler": EulerSolver,
    "rk4": RungeKutta4Solver,
    "rk45": DormandPrince45Solver,
    "cvode": DormandPrince45Solver,  # alias: the paper's stack defaults to CVode
}


def get_solver(name, **options):
    """Return a solver instance by registry name.

    Parameters
    ----------
    name:
        One of ``"euler"``, ``"rk4"``, ``"rk45"`` or the alias ``"cvode"``.
    options:
        Keyword options forwarded to the solver constructor (for example
        ``rtol``/``atol`` for the adaptive solver or ``max_step``).
    """
    try:
        cls = SOLVER_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(SOLVER_REGISTRY))
        raise ValueError(f"unknown solver {name!r}; expected one of: {known}") from None
    return cls(**options)


__all__ = [
    "BatchOdeProblem",
    "BatchOdeSolution",
    "OdeProblem",
    "OdeSolution",
    "OdeSolver",
    "solve_ode",
    "EulerSolver",
    "RungeKutta4Solver",
    "DormandPrince45Solver",
    "RetryPolicy",
    "SOLVER_REGISTRY",
    "get_solver",
]
