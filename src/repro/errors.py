"""Shared exception hierarchy for the pgFMU reproduction.

Every subpackage raises exceptions derived from :class:`ReproError` so that
callers embedding the library (examples, benchmarks, the SQL engine's UDF
layer) can catch a single base class at the integration boundary while still
being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class TimeoutError(ReproError):  # noqa: A001 - intentionally shadows builtins.TimeoutError
    """A statement exceeded its deadline (``statement_timeout``).

    Raised by :meth:`repro.cancellation.CancelToken.check` from the executor
    plan operators and the solver step loops, so a runaway simulation or
    query stops at the next check point instead of holding the engine.
    """


class CancelledError(ReproError):
    """A statement was cancelled by the caller (``Cursor.cancel()``)."""


class SqlError(ReproError):
    """Base class for errors raised by the in-memory SQL engine."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""


class SqlCatalogError(SqlError):
    """A table, column, or function referenced in a query does not exist."""


class SqlTypeError(SqlError):
    """A value could not be coerced to the column or expression type."""


class SqlIntegrityError(SqlError):
    """A primary-key, foreign-key, or not-null constraint was violated."""


class SqlExecutionError(SqlError):
    """A runtime failure while executing an otherwise valid query."""


class SqlStorageError(SqlError):
    """The durable storage layer (WAL, page store, recovery) failed."""


class InjectedCrash(SqlStorageError):
    """Raised by the storage fault injector to simulate a process crash.

    Recovery tests arm a :class:`repro.sqldb.storage.wal.FaultInjector`, let
    it cut a write short, catch this exception, and reopen the database from
    whatever bytes made it to disk - the in-process equivalent of
    ``kill -9``.
    """


class ServerError(ReproError):
    """Base class for errors raised by the socket server / wire protocol."""


class ProtocolError(ServerError):
    """A wire-protocol frame or message was malformed, torn, or oversized."""


class AuthError(ServerError):
    """Authentication failed: unknown token, or a bad session cancel key."""


class FmiError(ReproError):
    """Base class for FMU archive / runtime errors."""


class FmuFormatError(FmiError):
    """An FMU archive is malformed (bad zip layout or model description)."""


class FmuStateError(FmiError):
    """An FMU runtime operation was invoked in an invalid state."""


class FmuVariableError(FmiError):
    """A variable name or value reference does not exist in the FMU."""


class ModelicaError(ReproError):
    """Base class for Modelica compilation errors."""


class ModelicaSyntaxError(ModelicaError):
    """The Modelica source could not be parsed."""


class ModelicaSemanticError(ModelicaError):
    """The Modelica model is syntactically valid but cannot be flattened."""


class SolverError(ReproError):
    """An ODE solver failed to advance the solution."""


class EstimationError(ReproError):
    """Parameter estimation failed (bad bounds, no measurements, ...)."""


class MlError(ReproError):
    """An in-DBMS machine-learning routine failed (ARIMA, logistic, ...)."""


class PgFmuError(ReproError):
    """Base class for errors raised by the pgFMU core UDF layer."""


class UnknownInstanceError(PgFmuError):
    """A model instance identifier is not present in the model catalogue."""


class UnknownModelError(PgFmuError):
    """A model identifier is not present in the model catalogue."""


class DuplicateInstanceError(PgFmuError):
    """A model instance identifier is already present in the catalogue."""


class SimulationInputError(PgFmuError):
    """Insufficient or inconsistent input data was supplied for simulation."""
